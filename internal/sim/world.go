// Package sim is the world simulator standing in for the paper's live
// campus cameras: vehicles with distinct colors move over a road network
// (waiting at traffic lights), and each simulated camera renders raster
// frames of its field of view with ground-truth annotations. Downstream
// components consume real pixels and real bounding boxes, so the vision,
// tracking, and re-identification code paths run unchanged.
package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/des"
	"repro/internal/geo"
	"repro/internal/imaging"
	"repro/internal/roadnet"
	"repro/internal/vision"
)

// VehicleSpec describes one simulated vehicle.
type VehicleSpec struct {
	ID    string
	Color imaging.Color
	// SpeedMPS is the cruising speed in meters per second.
	SpeedMPS float64
	// Route is the sequence of intersections the vehicle drives through.
	// Every consecutive pair must be joined by a directed lane.
	Route []roadnet.NodeID
	// Depart is when the vehicle starts from Route[0].
	Depart time.Duration
}

// TrafficLight gates entry onto the lanes leaving a node: a vehicle
// arriving while the light is red waits for the next green.
type TrafficLight struct {
	Node roadnet.NodeID
	// Period is the full red+green cycle length.
	Period time.Duration
	// GreenFrac is the fraction of the cycle that is green, in (0, 1).
	GreenFrac float64
	// Phase offsets the cycle start.
	Phase time.Duration
}

// greenAt reports whether the light is green at t, and if not, when the
// next green phase begins.
func (l TrafficLight) greenAt(t time.Duration) (bool, time.Duration) {
	cyclePos := (t + l.Phase) % l.Period
	if cyclePos < 0 {
		cyclePos += l.Period
	}
	green := time.Duration(float64(l.Period) * l.GreenFrac)
	if cyclePos < green {
		return true, t
	}
	return false, t + (l.Period - cyclePos)
}

// segment is one piece of a vehicle's piecewise-linear motion schedule.
type segment struct {
	t0, t1   time.Duration
	from, to roadnet.NodeID
	waiting  bool // holding position at 'from'
}

// vehicle is a scheduled vehicle instance.
type vehicle struct {
	spec     VehicleSpec
	segments []segment
	done     time.Duration // time the route completes
}

// position returns the vehicle's location at time t; ok is false before
// departure and after route completion.
func (v *vehicle) position(g *roadnet.Graph, t time.Duration) (geo.Point, bool) {
	if t < v.spec.Depart || t >= v.done || len(v.segments) == 0 {
		return geo.Point{}, false
	}
	idx := sort.Search(len(v.segments), func(i int) bool { return v.segments[i].t1 > t })
	if idx >= len(v.segments) {
		return geo.Point{}, false
	}
	seg := v.segments[idx]
	fromNode, err := g.Node(seg.from)
	if err != nil {
		return geo.Point{}, false
	}
	if seg.waiting || seg.t1 == seg.t0 {
		return fromNode.Pos, true
	}
	toNode, err := g.Node(seg.to)
	if err != nil {
		return geo.Point{}, false
	}
	frac := float64(t-seg.t0) / float64(seg.t1-seg.t0)
	return fromNode.Pos.Lerp(toNode.Pos, frac), true
}

// WorldConfig assembles a world.
type WorldConfig struct {
	Sim   *des.Simulator
	Graph *roadnet.Graph
}

// World holds the simulated road network, vehicles, lights, and cameras.
// It is single-threaded: all mutation happens on the simulator goroutine.
type World struct {
	sim    *des.Simulator
	graph  *roadnet.Graph
	lights map[roadnet.NodeID]TrafficLight

	vehicles map[string]*vehicle
	cameras  map[string]*Camera
	// lightRelease tracks the last discharge instant per signalized
	// intersection so queued vehicles release one headway apart instead
	// of as one overlapping clump.
	lightRelease map[roadnet.NodeID]time.Duration
}

// lightHeadwaySeconds is the discharge headway at a green light: the
// spacing between consecutive queued vehicles entering the intersection.
const lightHeadway = 1200 * time.Millisecond

// NewWorld validates the config and returns an empty world.
func NewWorld(cfg WorldConfig) (*World, error) {
	if cfg.Sim == nil || cfg.Graph == nil {
		return nil, errors.New("sim: simulator and graph required")
	}
	return &World{
		sim:          cfg.Sim,
		graph:        cfg.Graph,
		lights:       make(map[roadnet.NodeID]TrafficLight),
		vehicles:     make(map[string]*vehicle),
		cameras:      make(map[string]*Camera),
		lightRelease: make(map[roadnet.NodeID]time.Duration),
	}, nil
}

// Graph exposes the underlying road network.
func (w *World) Graph() *roadnet.Graph { return w.graph }

// Sim exposes the discrete-event simulator driving the world.
func (w *World) Sim() *des.Simulator { return w.sim }

// AddTrafficLight installs a light at a node. Lights must be added before
// the vehicles whose schedules they affect.
func (w *World) AddTrafficLight(l TrafficLight) error {
	if _, err := w.graph.Node(l.Node); err != nil {
		return err
	}
	if l.Period <= 0 {
		return fmt.Errorf("sim: light period %v must be positive", l.Period)
	}
	if l.GreenFrac <= 0 || l.GreenFrac >= 1 {
		return fmt.Errorf("sim: green fraction %v out of (0,1)", l.GreenFrac)
	}
	w.lights[l.Node] = l
	return nil
}

// AddVehicle schedules a vehicle. The schedule is computed eagerly:
// travel each lane at cruising speed, waiting at red lights.
func (w *World) AddVehicle(spec VehicleSpec) error {
	if spec.ID == "" {
		return errors.New("sim: vehicle id required")
	}
	if _, ok := w.vehicles[spec.ID]; ok {
		return fmt.Errorf("sim: vehicle %q already exists", spec.ID)
	}
	if spec.SpeedMPS <= 0 {
		return fmt.Errorf("sim: vehicle %q speed %v must be positive", spec.ID, spec.SpeedMPS)
	}
	if len(spec.Route) < 2 {
		return fmt.Errorf("sim: vehicle %q route needs >= 2 nodes", spec.ID)
	}
	v := &vehicle{spec: spec}
	t := spec.Depart
	for i := 0; i+1 < len(spec.Route); i++ {
		from, to := spec.Route[i], spec.Route[i+1]
		length, err := w.graph.EdgeLengthMeters(from, to)
		if err != nil {
			return fmt.Errorf("sim: vehicle %q leg %d: %w", spec.ID, i, err)
		}
		// Intermediate intersections with lights gate entry to the next
		// lane (the first node has no queue to model).
		if i > 0 {
			if light, ok := w.lights[from]; ok {
				release := w.lightReleaseTime(light, t)
				if release > t {
					v.segments = append(v.segments, segment{t0: t, t1: release, from: from, to: from, waiting: true})
					t = release
				}
				w.lightRelease[from] = release
			}
		}
		travel := time.Duration(float64(time.Second) * length / spec.SpeedMPS)
		v.segments = append(v.segments, segment{t0: t, t1: t + travel, from: from, to: to})
		t += travel
	}
	v.done = t
	w.vehicles[spec.ID] = v
	return nil
}

// lightReleaseTime computes when a vehicle arriving at a signalized
// intersection at time t may enter it: at a green phase, and at least one
// discharge headway after the previous vehicle released there.
func (w *World) lightReleaseTime(light TrafficLight, t time.Duration) time.Duration {
	release := t
	for iter := 0; iter < 100; iter++ {
		if green, next := light.greenAt(release); !green {
			release = next
			continue
		}
		if last, ok := w.lightRelease[light.Node]; ok && release < last+lightHeadway {
			release = last + lightHeadway
			continue
		}
		return release
	}
	return release
}

// VehicleDone returns when a vehicle finishes its route.
func (w *World) VehicleDone(id string) (time.Duration, error) {
	v, ok := w.vehicles[id]
	if !ok {
		return 0, fmt.Errorf("sim: vehicle %q not found", id)
	}
	return v.done, nil
}

// VehiclePosition returns a vehicle's position at time t.
func (w *World) VehiclePosition(id string, t time.Duration) (geo.Point, bool, error) {
	v, ok := w.vehicles[id]
	if !ok {
		return geo.Point{}, false, fmt.Errorf("sim: vehicle %q not found", id)
	}
	pos, visible := v.position(w.graph, t)
	return pos, visible, nil
}

// vehicleIDs returns the installed vehicle IDs, sorted.
func (w *World) vehicleIDs() []string {
	out := make([]string, 0, len(w.vehicles))
	for id := range w.vehicles {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// LastVehicleDone returns the completion time of the last vehicle, which
// is a natural simulation horizon.
func (w *World) LastVehicleDone() time.Duration {
	var last time.Duration
	for _, v := range w.vehicles {
		if v.done > last {
			last = v.done
		}
	}
	return last
}

// headingRadians converts a compass heading in degrees to radians.
func headingRadians(deg float64) float64 { return deg * math.Pi / 180 }

// planarOffsetMeters returns the (east, north) displacement from a to b.
func planarOffsetMeters(a, b geo.Point) (east, north float64) {
	north = (b.Lat - a.Lat) * 111194.0
	east = (b.Lon - a.Lon) * 111194.0 * math.Cos(a.Lat*math.Pi/180)
	return east, north
}

var _ = vision.Frame{} // vision types are used by camera.go
