package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/imaging"
	"repro/internal/roadnet"
)

// basePalette is a set of well-separated vehicle colors: far apart in RGB
// so color-histogram re-identification can discriminate them, the way
// real vehicle paint does at a distance.
var basePalette = []imaging.Color{
	{R: 220, G: 40, B: 40},   // red
	{R: 40, G: 80, B: 220},   // blue
	{R: 245, G: 245, B: 245}, // white
	{R: 25, G: 25, B: 25},    // black
	{R: 240, G: 200, B: 40},  // yellow
	{R: 40, G: 170, B: 70},   // green
	{R: 160, G: 160, B: 170}, // silver
	{R: 150, G: 70, B: 20},   // brown
	{R: 240, G: 120, B: 30},  // orange
	{R: 120, G: 40, B: 160},  // purple
	{R: 40, G: 190, B: 190},  // teal
	{R: 230, G: 120, B: 160}, // pink
}

// PaletteColor returns the i-th vehicle color, cycling with a slight
// deterministic perturbation after the base palette is exhausted.
func PaletteColor(i int) imaging.Color {
	c := basePalette[i%len(basePalette)]
	round := i / len(basePalette)
	if round == 0 {
		return c
	}
	shift := uint8(round * 23)
	return imaging.Color{R: c.R ^ shift, G: c.G ^ (shift >> 1), B: c.B ^ (shift << 1)}
}

// RandomRoute generates a random walk of the given number of legs
// starting at start, avoiding immediate U-turns whenever the intersection
// offers an alternative.
func RandomRoute(g *roadnet.Graph, rng *rand.Rand, start roadnet.NodeID, legs int) ([]roadnet.NodeID, error) {
	if legs < 1 {
		return nil, fmt.Errorf("sim: route needs >= 1 leg, got %d", legs)
	}
	route := []roadnet.NodeID{start}
	prev := roadnet.NodeID(-1)
	cur := start
	for i := 0; i < legs; i++ {
		neighbors := g.OutNeighbors(cur)
		if len(neighbors) == 0 {
			break
		}
		candidates := neighbors[:0:0]
		for _, n := range neighbors {
			if n != prev {
				candidates = append(candidates, n)
			}
		}
		if len(candidates) == 0 {
			candidates = neighbors // dead end: U-turn is the only option
		}
		next := candidates[rng.Intn(len(candidates))]
		route = append(route, next)
		prev, cur = cur, next
	}
	if len(route) < 2 {
		return nil, fmt.Errorf("sim: node %d has no outgoing lanes", start)
	}
	return route, nil
}
