// Package tracker implements the SORT multi-object tracker (Bewley et al.,
// "Simple Online and Realtime Tracking", ICIP 2016) that Coral-Pie runs on
// RPi 2 to de-duplicate per-frame detections into one detection event per
// vehicle (paper Section 4.1.2), plus a naive centroid-matching baseline
// used by the design-space ablations.
package tracker

import (
	"fmt"
	"math"

	"repro/internal/hungarian"
	"repro/internal/imaging"
	"repro/internal/kalman"
	"repro/internal/mat"
	"repro/internal/vision"
)

// Config parameterizes the SORT tracker.
type Config struct {
	// MaxAge is how many consecutive frames a track may go unmatched
	// before it is considered departed (paper prototype: 3).
	MaxAge int
	// MinHits is how many matches a track needs before it is reported as
	// confirmed output.
	MinHits int
	// IoUThreshold is the minimum IoU for a detection-track match.
	IoUThreshold float64
}

// DefaultConfig returns the prototype parameters: the paper's max_age of
// 3, the reference SORT implementation's min_hits of 3 (suppressing
// single-frame false-positive tracks), and an IoU gate suited to the
// small boxes distant vehicles produce.
func DefaultConfig() Config {
	return Config{MaxAge: 3, MinHits: 3, IoUThreshold: 0.25}
}

func (c Config) validate() error {
	if c.MaxAge < 1 {
		return fmt.Errorf("tracker: MaxAge %d must be >= 1", c.MaxAge)
	}
	if c.MinHits < 1 {
		return fmt.Errorf("tracker: MinHits %d must be >= 1", c.MinHits)
	}
	if c.IoUThreshold <= 0 || c.IoUThreshold > 1 {
		return fmt.Errorf("tracker: IoUThreshold %v out of (0,1]", c.IoUThreshold)
	}
	return nil
}

// Observation is one matched detection on a track's tracklet.
type Observation struct {
	Seq       int64
	Box       imaging.Rect
	TruthID   string
	DetsIndex int // index into the Update call's detection slice
}

// Track is one tracked object. A track accumulates its tracklet (the
// sequence of matched boxes) so that feature extraction can run when the
// vehicle departs.
type Track struct {
	ID              int64
	Hits            int
	Age             int
	TimeSinceUpdate int
	Tracklet        []Observation

	kf *kalman.Filter
}

// PredictedBox returns the current Kalman state as a bounding box.
func (t *Track) PredictedBox() imaging.Rect {
	return stateToRect(t.kf.State())
}

// Confirmed reports whether the track has at least minHits matches.
func (t *Track) confirmed(minHits int) bool { return t.Hits >= minHits }

// Tracker is a SORT tracker. It is not safe for concurrent use; each
// camera pipeline owns one.
type Tracker struct {
	cfg    Config
	nextID int64
	tracks []*Track
}

// New validates the config and returns an empty tracker.
func New(cfg Config) (*Tracker, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Tracker{cfg: cfg, nextID: 1}, nil
}

// Assignment maps a detection index (into the Update call's slice) to the
// track it matched.
type Assignment struct {
	DetIndex int
	TrackID  int64
	IsNew    bool
}

// UpdateResult reports the outcome of one tracker step.
type UpdateResult struct {
	// Assignments covers every detection: matched to an existing track or
	// starting a new one.
	Assignments []Assignment
	// Departed holds tracks removed this step because they went unmatched
	// for more than MaxAge frames. The camera node turns each confirmed
	// departed track into a single vehicle detection event.
	Departed []*Track
	// Active is the number of live tracks after the update.
	Active int
}

// Update advances every track one frame, matches the detections to
// predicted boxes by maximum-IoU assignment, spawns tracks for unmatched
// detections, and retires tracks unmatched for more than MaxAge frames.
func (tr *Tracker) Update(seq int64, dets []vision.Detection) (UpdateResult, error) {
	// 1. Predict all tracks forward.
	for _, t := range tr.tracks {
		t.kf.Predict()
		t.Age++
		t.TimeSinceUpdate++
	}

	// 2. Associate detections to tracks by IoU.
	matchedDet := make([]int, len(dets)) // det index -> track index, -1 if none
	for i := range matchedDet {
		matchedDet[i] = -1
	}
	if len(dets) > 0 && len(tr.tracks) > 0 {
		iou := make([][]float64, len(dets))
		for i, d := range dets {
			iou[i] = make([]float64, len(tr.tracks))
			for j, t := range tr.tracks {
				iou[i][j] = d.Box.IoU(t.PredictedBox())
			}
		}
		assign, _, err := hungarian.SolveMax(iou)
		if err != nil {
			return UpdateResult{}, fmt.Errorf("tracker: assignment: %w", err)
		}
		for i, j := range assign {
			if j == hungarian.Unassigned {
				continue
			}
			if iou[i][j] < tr.cfg.IoUThreshold {
				continue // reject weak matches
			}
			matchedDet[i] = j
		}
	}

	res := UpdateResult{Assignments: make([]Assignment, 0, len(dets))}

	// 3. Update matched tracks; spawn tracks for unmatched detections.
	for i, d := range dets {
		if j := matchedDet[i]; j >= 0 {
			t := tr.tracks[j]
			if err := t.kf.Update(rectToMeasurement(d.Box)); err != nil {
				return UpdateResult{}, fmt.Errorf("tracker: kalman update: %w", err)
			}
			t.Hits++
			t.TimeSinceUpdate = 0
			t.Tracklet = append(t.Tracklet, Observation{Seq: seq, Box: d.Box, TruthID: d.TruthID, DetsIndex: i})
			res.Assignments = append(res.Assignments, Assignment{DetIndex: i, TrackID: t.ID})
			continue
		}
		t, err := tr.newTrack(seq, i, d)
		if err != nil {
			return UpdateResult{}, err
		}
		tr.tracks = append(tr.tracks, t)
		res.Assignments = append(res.Assignments, Assignment{DetIndex: i, TrackID: t.ID, IsNew: true})
	}

	// 4. Retire stale tracks.
	live := tr.tracks[:0]
	for _, t := range tr.tracks {
		if t.TimeSinceUpdate > tr.cfg.MaxAge {
			res.Departed = append(res.Departed, t)
			continue
		}
		live = append(live, t)
	}
	// Zero the tail so retired tracks do not linger in the backing array.
	for i := len(live); i < len(tr.tracks); i++ {
		tr.tracks[i] = nil
	}
	tr.tracks = live
	res.Active = len(tr.tracks)
	return res, nil
}

// Flush retires every live track, returning them as departed. Used at
// end-of-stream so that vehicles still in the field of view produce their
// detection events.
func (tr *Tracker) Flush() []*Track {
	out := tr.tracks
	tr.tracks = nil
	return out
}

// ActiveTracks returns the live tracks (shared pointers; callers must not
// mutate).
func (tr *Tracker) ActiveTracks() []*Track {
	out := make([]*Track, len(tr.tracks))
	copy(out, tr.tracks)
	return out
}

// ConfirmedDeparted filters departed tracks to those that met MinHits,
// which is the set the camera node emits as detection events.
func (tr *Tracker) ConfirmedDeparted(departed []*Track) []*Track {
	out := make([]*Track, 0, len(departed))
	for _, t := range departed {
		if t.confirmed(tr.cfg.MinHits) {
			out = append(out, t)
		}
	}
	return out
}

func (tr *Tracker) newTrack(seq int64, detIndex int, d vision.Detection) (*Track, error) {
	kf, err := newBoxFilter(d.Box)
	if err != nil {
		return nil, fmt.Errorf("tracker: new track: %w", err)
	}
	t := &Track{
		ID:       tr.nextID,
		Hits:     1,
		kf:       kf,
		Tracklet: []Observation{{Seq: seq, Box: d.Box, TruthID: d.TruthID, DetsIndex: detIndex}},
	}
	tr.nextID++
	return t, nil
}

// --- bounding-box Kalman model (constant velocity, Bewley et al.) ---

// newBoxFilter builds the 7-state constant-velocity filter over
// [u, v, s, r, u̇, v̇, ṡ] with the covariance values from the reference
// SORT implementation.
func newBoxFilter(box imaging.Rect) (*kalman.Filter, error) {
	const n = 7
	f := mat.Identity(n)
	f.Set(0, 4, 1)
	f.Set(1, 5, 1)
	f.Set(2, 6, 1)

	h := mat.New(4, n)
	for i := 0; i < 4; i++ {
		h.Set(i, i, 1)
	}

	p := mat.Identity(n).Scale(10)
	for i := 4; i < n; i++ {
		p.Set(i, i, 10000)
	}

	q := mat.Identity(n)
	q.Set(4, 4, 0.01)
	q.Set(5, 5, 0.01)
	q.Set(6, 6, 0.0001)

	r := mat.Identity(4)
	r.Set(2, 2, 10)
	r.Set(3, 3, 10)

	z := rectToMeasurement(box)
	x0 := mat.ColVector(z.At(0, 0), z.At(1, 0), z.At(2, 0), z.At(3, 0), 0, 0, 0)
	return kalman.New(kalman.Config{
		InitialState:      x0,
		InitialCovariance: p,
		Transition:        f,
		Observation:       h,
		ProcessNoise:      q,
		ObservationNoise:  r,
	})
}

// rectToMeasurement converts a box to the [u, v, s, r] measurement where
// (u, v) is the center, s the area, and r the aspect ratio.
func rectToMeasurement(b imaging.Rect) *mat.Matrix {
	w, h := float64(b.W), float64(b.H)
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return mat.ColVector(b.CenterX(), b.CenterY(), w*h, w/h)
}

// stateToRect converts the filter state back to an integer box.
func stateToRect(x *mat.Matrix) imaging.Rect {
	u, v := x.At(0, 0), x.At(1, 0)
	s, r := x.At(2, 0), x.At(3, 0)
	if s < 1 {
		s = 1
	}
	if r <= 0 {
		r = 1
	}
	w := math.Sqrt(s * r)
	h := s / w
	return imaging.Rect{
		X: int(math.Round(u - w/2)),
		Y: int(math.Round(v - h/2)),
		W: max(1, int(math.Round(w))),
		H: max(1, int(math.Round(h))),
	}
}
