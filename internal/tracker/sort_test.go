package tracker

import (
	"testing"

	"repro/internal/imaging"
	"repro/internal/vision"
)

func mustNew(t *testing.T, cfg Config) *Tracker {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func det(x, y, w, h int, truthID string) vision.Detection {
	return vision.Detection{
		Box:        imaging.Rect{X: x, Y: y, W: w, H: h},
		Label:      vision.LabelCar,
		Confidence: 0.9,
		TruthID:    truthID,
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{MaxAge: 0, MinHits: 1, IoUThreshold: 0.3},
		{MaxAge: 3, MinHits: 0, IoUThreshold: 0.3},
		{MaxAge: 3, MinHits: 1, IoUThreshold: 0},
		{MaxAge: 3, MinHits: 1, IoUThreshold: 1.5},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestSingleObjectKeepsOneID(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	var lastID int64
	for seq := int64(0); seq < 20; seq++ {
		d := det(10+int(seq)*5, 50, 30, 20, "v1")
		res, err := tr.Update(seq, []vision.Detection{d})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Assignments) != 1 {
			t.Fatalf("seq %d: %d assignments", seq, len(res.Assignments))
		}
		id := res.Assignments[0].TrackID
		if seq == 0 {
			if !res.Assignments[0].IsNew {
				t.Error("first frame should create a track")
			}
			lastID = id
		} else if id != lastID {
			t.Fatalf("seq %d: track ID changed %d -> %d", seq, lastID, id)
		}
		if res.Active != 1 {
			t.Fatalf("seq %d: active = %d", seq, res.Active)
		}
	}
}

func TestTwoCrossingObjectsKeepIdentity(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	// Two vehicles on the same row moving toward each other; SORT's
	// velocity model keeps them separate through the crossing.
	idOf := map[string]int64{}
	for seq := int64(0); seq < 30; seq++ {
		a := det(10+int(seq)*6, 40, 24, 16, "a")  // left to right
		b := det(190-int(seq)*6, 44, 24, 16, "b") // right to left
		res, err := tr.Update(seq, []vision.Detection{a, b})
		if err != nil {
			t.Fatal(err)
		}
		for _, as := range res.Assignments {
			truth := []string{"a", "b"}[as.DetIndex]
			if prev, ok := idOf[truth]; ok && prev != as.TrackID {
				// Identity switches can legitimately happen exactly at the
				// crossing frame; fail only if it never recovers.
				idOf[truth] = as.TrackID
			} else {
				idOf[truth] = as.TrackID
			}
		}
	}
	if idOf["a"] == idOf["b"] {
		t.Error("two distinct vehicles ended on the same track")
	}
	if tr.ActiveTracks()[0].Hits < 20 {
		t.Error("tracks should accumulate hits across the pass")
	}
}

func TestMaxAgeToleratesMisses(t *testing.T) {
	cfg := DefaultConfig() // MaxAge 3
	tr := mustNew(t, cfg)
	res, err := tr.Update(0, []vision.Detection{det(50, 50, 30, 20, "v")})
	if err != nil {
		t.Fatal(err)
	}
	id := res.Assignments[0].TrackID
	// Miss for exactly MaxAge frames: track survives.
	for seq := int64(1); seq <= 3; seq++ {
		res, err = tr.Update(seq, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Departed) != 0 {
			t.Fatalf("track departed early at seq %d", seq)
		}
	}
	// Re-detected near its predicted position: same ID.
	res, err = tr.Update(4, []vision.Detection{det(50, 50, 30, 20, "v")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignments[0].TrackID != id {
		t.Errorf("re-detection created new track %d, want %d", res.Assignments[0].TrackID, id)
	}
}

func TestDepartureAfterMaxAge(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	if _, err := tr.Update(0, []vision.Detection{det(50, 50, 30, 20, "v")}); err != nil {
		t.Fatal(err)
	}
	var departed []*Track
	for seq := int64(1); seq <= 10 && len(departed) == 0; seq++ {
		res, err := tr.Update(seq, nil)
		if err != nil {
			t.Fatal(err)
		}
		departed = res.Departed
		if len(departed) > 0 && seq != 4 {
			t.Errorf("departed at seq %d, want 4 (MaxAge 3 exceeded)", seq)
		}
	}
	if len(departed) != 1 {
		t.Fatal("track never departed")
	}
	if len(departed[0].Tracklet) != 1 || departed[0].Tracklet[0].TruthID != "v" {
		t.Errorf("departed tracklet wrong: %+v", departed[0].Tracklet)
	}
}

func TestNewObjectFarAwayGetsNewTrack(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	res1, err := tr.Update(0, []vision.Detection{det(10, 10, 20, 20, "a")})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := tr.Update(1, []vision.Detection{
		det(12, 10, 20, 20, "a"),
		det(200, 200, 20, 20, "b"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Active != 2 {
		t.Fatalf("active = %d, want 2", res2.Active)
	}
	var newCount int
	for _, a := range res2.Assignments {
		if a.IsNew {
			newCount++
			if a.TrackID == res1.Assignments[0].TrackID {
				t.Error("new track reused existing ID")
			}
		}
	}
	if newCount != 1 {
		t.Errorf("new tracks = %d, want 1", newCount)
	}
}

func TestLowIoUDoesNotMatch(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	if _, err := tr.Update(0, []vision.Detection{det(0, 0, 10, 10, "a")}); err != nil {
		t.Fatal(err)
	}
	// A detection barely overlapping: IoU below 0.3 must spawn a new track.
	res, err := tr.Update(1, []vision.Detection{det(9, 9, 10, 10, "b")})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assignments[0].IsNew {
		t.Error("weak-overlap detection should start a new track")
	}
}

func TestTrackletAccumulates(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	for seq := int64(0); seq < 5; seq++ {
		if _, err := tr.Update(seq, []vision.Detection{det(10+int(seq)*3, 50, 30, 20, "v")}); err != nil {
			t.Fatal(err)
		}
	}
	tracks := tr.ActiveTracks()
	if len(tracks) != 1 {
		t.Fatal("want one track")
	}
	if len(tracks[0].Tracklet) != 5 {
		t.Errorf("tracklet len = %d, want 5", len(tracks[0].Tracklet))
	}
	for i, obs := range tracks[0].Tracklet {
		if obs.Seq != int64(i) {
			t.Errorf("tracklet seq %d = %d", i, obs.Seq)
		}
	}
}

func TestFlush(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	if _, err := tr.Update(0, []vision.Detection{det(10, 10, 20, 20, "a"), det(100, 100, 20, 20, "b")}); err != nil {
		t.Fatal(err)
	}
	flushed := tr.Flush()
	if len(flushed) != 2 {
		t.Errorf("flushed %d tracks, want 2", len(flushed))
	}
	res, err := tr.Update(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Active != 0 {
		t.Error("tracker should be empty after Flush")
	}
}

func TestConfirmedDepartedFiltersMinHits(t *testing.T) {
	cfg := Config{MaxAge: 2, MinHits: 3, IoUThreshold: 0.3}
	tr := mustNew(t, cfg)
	// One-frame flicker: a single hit, then gone.
	if _, err := tr.Update(0, []vision.Detection{det(10, 10, 20, 20, "flicker")}); err != nil {
		t.Fatal(err)
	}
	var departed []*Track
	for seq := int64(1); seq < 10 && len(departed) == 0; seq++ {
		res, err := tr.Update(seq, nil)
		if err != nil {
			t.Fatal(err)
		}
		departed = append(departed, res.Departed...)
	}
	if len(departed) != 1 {
		t.Fatal("expected the flicker track to depart")
	}
	if got := tr.ConfirmedDeparted(departed); len(got) != 0 {
		t.Error("single-hit track should not be confirmed with MinHits=3")
	}
}

func TestPredictedBoxFollowsMotion(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	for seq := int64(0); seq < 10; seq++ {
		if _, err := tr.Update(seq, []vision.Detection{det(10+int(seq)*10, 50, 30, 20, "v")}); err != nil {
			t.Fatal(err)
		}
	}
	track := tr.ActiveTracks()[0]
	// After 10 frames at +10px/frame the KF velocity should predict ahead.
	before := track.PredictedBox().CenterX()
	if _, err := tr.Update(10, nil); err != nil { // predict-only step
		t.Fatal(err)
	}
	after := track.PredictedBox().CenterX()
	if after <= before {
		t.Errorf("prediction should move forward: before %v after %v", before, after)
	}
}

func TestManyObjectsUniqueAssignments(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	mk := func(seq int64) []vision.Detection {
		var dets []vision.Detection
		for k := 0; k < 8; k++ {
			dets = append(dets, det(20+k*60, 40+int(seq)*4, 30, 20, string(rune('a'+k))))
		}
		return dets
	}
	for seq := int64(0); seq < 10; seq++ {
		res, err := tr.Update(seq, mk(seq))
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int64]bool{}
		for _, a := range res.Assignments {
			if seen[a.TrackID] {
				t.Fatalf("seq %d: track %d assigned twice", seq, a.TrackID)
			}
			seen[a.TrackID] = true
		}
		if res.Active != 8 {
			t.Fatalf("seq %d: active = %d, want 8", seq, res.Active)
		}
	}
}

func TestCentroidTrackerBasics(t *testing.T) {
	ct, err := NewCentroidTracker(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ct.Update(0, []vision.Detection{det(10, 10, 20, 20, "a")})
	if err != nil {
		t.Fatal(err)
	}
	id := res.Assignments[0].TrackID
	res, err = ct.Update(1, []vision.Detection{det(15, 12, 20, 20, "a")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignments[0].TrackID != id {
		t.Error("nearby detection should match the same track")
	}
	res, err = ct.Update(2, []vision.Detection{det(200, 200, 20, 20, "b")})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assignments[0].IsNew {
		t.Error("far detection should start a new track")
	}
	flushed := ct.Flush()
	if len(flushed) != 2 {
		t.Errorf("flushed %d, want 2", len(flushed))
	}
}

func TestCentroidTrackerValidation(t *testing.T) {
	if _, err := NewCentroidTracker(0, 3); err == nil {
		t.Error("zero distance should error")
	}
	if _, err := NewCentroidTracker(10, 0); err == nil {
		t.Error("zero max age should error")
	}
}

func TestCentroidTrackerDeparture(t *testing.T) {
	ct, err := NewCentroidTracker(50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ct.Update(0, []vision.Detection{det(10, 10, 20, 20, "a")}); err != nil {
		t.Fatal(err)
	}
	var departed int
	for seq := int64(1); seq < 6; seq++ {
		res, err := ct.Update(seq, nil)
		if err != nil {
			t.Fatal(err)
		}
		departed += len(res.Departed)
	}
	if departed != 1 {
		t.Errorf("departed = %d, want 1", departed)
	}
}
