package tracker

import (
	"fmt"
	"math"

	"repro/internal/imaging"
	"repro/internal/vision"
)

// CentroidTracker is the naive nearest-centroid baseline used by the
// design-space ablations (paper Section 4.1.5 compares tracker choices).
// It matches each detection to the closest live track centroid within
// MaxDistancePx, with no motion model, so it confuses crossing vehicles
// that SORT keeps apart.
type CentroidTracker struct {
	maxDistance float64
	maxAge      int
	nextID      int64
	tracks      []*centroidTrack
}

type centroidTrack struct {
	id              int64
	last            imaging.Rect
	timeSinceUpdate int
	tracklet        []Observation
	hits            int
}

// NewCentroidTracker returns a centroid tracker with the given match
// radius in pixels and the same MaxAge semantics as SORT.
func NewCentroidTracker(maxDistancePx float64, maxAge int) (*CentroidTracker, error) {
	if maxDistancePx <= 0 {
		return nil, fmt.Errorf("tracker: max distance %v must be positive", maxDistancePx)
	}
	if maxAge < 1 {
		return nil, fmt.Errorf("tracker: max age %d must be >= 1", maxAge)
	}
	return &CentroidTracker{maxDistance: maxDistancePx, maxAge: maxAge, nextID: 1}, nil
}

// Update matches detections to tracks greedily by centroid distance and
// returns the same shape of result as the SORT tracker.
func (ct *CentroidTracker) Update(seq int64, dets []vision.Detection) (UpdateResult, error) {
	for _, t := range ct.tracks {
		t.timeSinceUpdate++
	}
	usedTrack := make([]bool, len(ct.tracks))
	res := UpdateResult{Assignments: make([]Assignment, 0, len(dets))}

	for i, d := range dets {
		best, bestDist := -1, ct.maxDistance
		for j, t := range ct.tracks {
			if usedTrack[j] {
				continue
			}
			dx := d.Box.CenterX() - t.last.CenterX()
			dy := d.Box.CenterY() - t.last.CenterY()
			dist := math.Hypot(dx, dy)
			if dist <= bestDist {
				best, bestDist = j, dist
			}
		}
		if best >= 0 {
			t := ct.tracks[best]
			usedTrack[best] = true
			t.last = d.Box
			t.timeSinceUpdate = 0
			t.hits++
			t.tracklet = append(t.tracklet, Observation{Seq: seq, Box: d.Box, TruthID: d.TruthID, DetsIndex: i})
			res.Assignments = append(res.Assignments, Assignment{DetIndex: i, TrackID: t.id})
			continue
		}
		t := &centroidTrack{
			id:   ct.nextID,
			last: d.Box,
			hits: 1,
			tracklet: []Observation{
				{Seq: seq, Box: d.Box, TruthID: d.TruthID, DetsIndex: i},
			},
		}
		ct.nextID++
		ct.tracks = append(ct.tracks, t)
		res.Assignments = append(res.Assignments, Assignment{DetIndex: i, TrackID: t.id, IsNew: true})
	}

	live := ct.tracks[:0]
	for _, t := range ct.tracks {
		if t.timeSinceUpdate > ct.maxAge {
			res.Departed = append(res.Departed, t.toTrack())
			continue
		}
		live = append(live, t)
	}
	for i := len(live); i < len(ct.tracks); i++ {
		ct.tracks[i] = nil
	}
	ct.tracks = live
	res.Active = len(ct.tracks)
	return res, nil
}

// Flush retires every live track.
func (ct *CentroidTracker) Flush() []*Track {
	out := make([]*Track, 0, len(ct.tracks))
	for _, t := range ct.tracks {
		out = append(out, t.toTrack())
	}
	ct.tracks = nil
	return out
}

func (t *centroidTrack) toTrack() *Track {
	return &Track{ID: t.id, Hits: t.hits, Tracklet: t.tracklet}
}
