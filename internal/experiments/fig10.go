package experiments

import (
	"fmt"
	"sort"
	"time"
)

// Fig10aPoint pairs, for one vehicle at the observed camera, the arrival
// of the informing message with the arrival of the vehicle itself.
type Fig10aPoint struct {
	VehicleID      string
	MessageArrival time.Duration
	VehicleArrival time.Duration
	// Headstart = VehicleArrival − MessageArrival (positive means the
	// protocol met its deadline).
	Headstart time.Duration
}

// Fig10aResult reproduces Figure 10(a): message-vs-vehicle arrival times
// at a downstream camera, with a traffic light upstream producing the
// stepped arrival structure.
type Fig10aResult struct {
	Camera string
	Points []Fig10aPoint
	// AllAhead reports whether every message beat its vehicle.
	AllAhead bool
	// MinHeadstart is the tightest margin observed.
	MinHeadstart time.Duration
}

// Figure10a runs the five-camera corridor with a traffic light between
// cameras 1 and 2 and observes camera 2.
func Figure10a(seed int64) (Fig10aResult, error) {
	cfg := DefaultCorridorConfig(seed)
	cfg.Vehicles = 16
	cfg.TurnProb = 0 // through traffic only: every vehicle reaches camera 2
	cfg.PerfectDetector = true
	cfg.TrafficLightAfterCamera = 1
	run, err := RunCorridor(cfg)
	if err != nil {
		return Fig10aResult{}, err
	}

	const observed = "cam2"
	res := Fig10aResult{Camera: observed, AllAhead: true}

	// First informing message per vehicle at the observed camera.
	msgAt := make(map[string]time.Duration)
	for _, in := range run.Informs[observed] {
		if in.Event.TruthID == "" {
			continue
		}
		if prev, ok := msgAt[in.Event.TruthID]; !ok || in.At < prev {
			msgAt[in.Event.TruthID] = in.At
		}
	}
	for vid, seenAt := range run.FirstSeen[observed] {
		m, ok := msgAt[vid]
		if !ok {
			continue // vehicle arrived with no message (e.g. startup edge)
		}
		p := Fig10aPoint{
			VehicleID:      vid,
			MessageArrival: m,
			VehicleArrival: seenAt,
			Headstart:      seenAt - m,
		}
		if p.Headstart <= 0 {
			res.AllAhead = false
		}
		res.Points = append(res.Points, p)
	}
	if len(res.Points) == 0 {
		return Fig10aResult{}, fmt.Errorf("experiments: figure 10a collected no points")
	}
	sort.Slice(res.Points, func(i, j int) bool {
		return res.Points[i].VehicleArrival < res.Points[j].VehicleArrival
	})
	res.MinHeadstart = res.Points[0].Headstart
	for _, p := range res.Points {
		if p.Headstart < res.MinHeadstart {
			res.MinHeadstart = p.Headstart
		}
	}
	return res, nil
}

// Fig10bRow is one camera's candidate-pool redundancy.
type Fig10bRow struct {
	Camera string
	// Redundant is the fraction of received informing messages never
	// matched by a re-identification.
	Redundant float64
}

// Fig10bResult reproduces Figure 10(b): per-camera spurious events under
// MDCS routing, against the broadcast-flooding baseline the paper quotes
// (>83% redundant).
type Fig10bResult struct {
	MDCS      []Fig10bRow
	Broadcast []Fig10bRow
	// MeanMDCS and MeanBroadcast average the per-camera redundancy.
	MeanMDCS      float64
	MeanBroadcast float64
}

// Figure10b runs the corridor twice — MDCS routing and broadcast — over
// identical traffic and compares candidate-pool redundancy.
func Figure10b(seed int64) (Fig10bResult, error) {
	base := DefaultCorridorConfig(seed)
	base.Vehicles = 24
	base.PerfectDetector = true

	mdcsRun, err := RunCorridor(base)
	if err != nil {
		return Fig10bResult{}, err
	}
	broadcast := base
	broadcast.Broadcast = true
	broadcastRun, err := RunCorridor(broadcast)
	if err != nil {
		return Fig10bResult{}, err
	}

	var res Fig10bResult
	collect := func(run *CorridorRun) ([]Fig10bRow, float64, error) {
		var rows []Fig10bRow
		var sum float64
		var counted int
		for _, cam := range run.CameraIDs {
			red, err := run.RedundancyOf(cam)
			if err != nil {
				return nil, 0, err
			}
			rows = append(rows, Fig10bRow{Camera: cam, Redundant: red})
			// Camera 1 receives no informs (it is the entry); skip it in
			// the average like the paper's per-camera bars.
			if cam != CameraName(1) {
				sum += red
				counted++
			}
		}
		if counted == 0 {
			return rows, 0, nil
		}
		return rows, sum / float64(counted), nil
	}
	if res.MDCS, res.MeanMDCS, err = collect(mdcsRun); err != nil {
		return Fig10bResult{}, err
	}
	if res.Broadcast, res.MeanBroadcast, err = collect(broadcastRun); err != nil {
		return Fig10bResult{}, err
	}
	return res, nil
}
