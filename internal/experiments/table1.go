// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 5). Each experiment is a pure function returning a
// structured result; cmd/experiments renders them and bench_test.go at
// the module root regenerates them under `go test -bench`.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/feature"
	"repro/internal/imaging"
	"repro/internal/pipeline"
	"repro/internal/protocol"
	"repro/internal/reid"
	"repro/internal/tracker"
	"repro/internal/trajstore"
	"repro/internal/vision"
)

// Table1Row is one sub-task latency entry.
type Table1Row struct {
	SubTask string
	// Paper is the paper's measured RPi 3B+ latency.
	Paper time.Duration
	// Modeled is the latency the timing model charges (equal to Paper:
	// the profile is the model input).
	Modeled time.Duration
	// MeasuredHost is this implementation's wall-clock latency for the
	// same sub-task on the build machine, for reference. Zero when the
	// sub-task is hardware-bound and purely modeled (e.g. Fetch).
	MeasuredHost time.Duration
}

// Table1Result reproduces the paper's Table 1 latency summary plus the
// Section 5.2 throughput observation.
type Table1Result struct {
	Rows []Table1Row
	// PipelinedFPS is the modeled pipeline throughput with a 15 FPS
	// source (paper: 10.4).
	PipelinedFPS float64
	// SequentialFPS is the naive unpipelined rate (paper: ~5x slower).
	SequentialFPS float64
	// Speedup is PipelinedFPS / SequentialFPS.
	Speedup float64
	// BottleneckStage names the pipeline stage limiting throughput
	// (paper: Load).
	BottleneckStage string
}

// Table1 produces the latency summary. Host measurements exercise the
// real implementations of the portable sub-tasks over a synthetic
// 1280×1024-equivalent workload scaled to the simulator's frame size.
func Table1() (Table1Result, error) {
	profile := pipeline.PaperRPi3Profile()
	host, err := measureHostSubTasks()
	if err != nil {
		return Table1Result{}, err
	}

	rows := []Table1Row{
		{SubTask: "Fetch", Paper: profile.Fetch, Modeled: profile.Fetch},
		{SubTask: "Load", Paper: profile.Load, Modeled: profile.Load},
		{SubTask: "Resize", Paper: profile.Resize, Modeled: profile.Resize},
		{SubTask: "Inference", Paper: profile.Inference, Modeled: profile.Inference, MeasuredHost: host.inference},
		{SubTask: "Post-Inference", Paper: profile.PostInference, Modeled: profile.PostInference, MeasuredHost: host.postInference},
		{SubTask: "RPi1_To_RPi2", Paper: profile.RPi1ToRPi2, Modeled: profile.RPi1ToRPi2},
		{SubTask: "Track", Paper: profile.Track, Modeled: profile.Track, MeasuredHost: host.track},
		{SubTask: "Feature Extraction", Paper: profile.FeatureExtraction, Modeled: profile.FeatureExtraction, MeasuredHost: host.featureExtract},
		{SubTask: "Communication", Paper: profile.Communication, Modeled: profile.Communication},
		{SubTask: "Vehicle-Reid", Paper: profile.VehicleReid, Modeled: profile.VehicleReid, MeasuredHost: host.reidMatch},
		{SubTask: "Trajectory Storage", Paper: profile.TrajStoreVertex + profile.TrajStoreEdge, Modeled: profile.TrajStoreVertex + profile.TrajStoreEdge, MeasuredHost: host.trajStore},
		{SubTask: "Frame Storage", Paper: profile.FrameStorage, Modeled: profile.FrameStorage},
	}

	stages := profile.DualDeviceStages()
	res, err := pipeline.SimulateTandem(stages, time.Second/15, 2000)
	if err != nil {
		return Table1Result{}, err
	}
	seq := pipeline.SequentialThroughputFPS(stages)
	out := Table1Result{
		Rows:            rows,
		PipelinedFPS:    res.ThroughputFPS,
		SequentialFPS:   seq,
		BottleneckStage: stages[res.BottleneckStage].Name,
	}
	if seq > 0 {
		out.Speedup = res.ThroughputFPS / seq
	}
	return out, nil
}

// hostLatencies are wall-clock medians of the portable sub-task
// implementations.
type hostLatencies struct {
	inference      time.Duration
	postInference  time.Duration
	track          time.Duration
	featureExtract time.Duration
	reidMatch      time.Duration
	trajStore      time.Duration
}

// measureHostSubTasks times this repository's implementations of the
// sub-tasks that are pure software (the EdgeTPU inference is replaced by
// the simulated detector, so its host time reflects the noise model, not
// a CNN).
func measureHostSubTasks() (hostLatencies, error) {
	const iters = 50
	img := imaging.MustNewFrame(256, 192)
	img.FillTexturedBackground(imaging.Gray, 1)
	box := imaging.Rect{X: 100, Y: 80, W: 24, H: 14}
	img.FillRect(box, imaging.Red)
	frame := &vision.Frame{
		CameraID: "bench",
		Image:    img,
		Truth:    []vision.TruthObject{{ID: "v", Label: vision.LabelCar, Box: box}},
	}

	det, err := vision.NewSimDetector(vision.DefaultSimDetectorConfig(1))
	if err != nil {
		return hostLatencies{}, err
	}
	var out hostLatencies

	out.inference = timeIt(iters, func() error {
		_, err := det.Detect(frame)
		return err
	})

	dets, err := det.Detect(frame)
	if err != nil {
		return hostLatencies{}, err
	}
	coi, err := vision.RectCoI(256, 192, 0.05)
	if err != nil {
		return hostLatencies{}, err
	}
	out.postInference = timeIt(iters, func() error {
		vision.PostProcess(dets, vision.PostProcessConfig{MinConfidence: 0.2, CoI: coi})
		return nil
	})

	tk, err := tracker.New(tracker.DefaultConfig())
	if err != nil {
		return hostLatencies{}, err
	}
	seq := int64(0)
	out.track = timeIt(iters, func() error {
		_, err := tk.Update(seq, []vision.Detection{{Box: box, Label: vision.LabelCar, Confidence: 0.9}})
		seq++
		return err
	})

	out.featureExtract = timeIt(iters, func() error {
		_, err := feature.Extract(img, box)
		return err
	})

	hist, err := feature.Extract(img, box)
	if err != nil {
		return hostLatencies{}, err
	}
	pool, err := reid.NewPool(reid.DefaultPoolConfig())
	if err != nil {
		return hostLatencies{}, err
	}
	for i := 0; i < 16; i++ {
		pool.Add(sampleEvent(fmt.Sprintf("up#%d", i), hist), time.Time{})
	}
	matcher, err := reid.NewMatcher(reid.DefaultMatcherConfig())
	if err != nil {
		return hostLatencies{}, err
	}
	out.reidMatch = timeIt(iters, func() error {
		matcher.Match(hist, pool, time.Time{})
		return nil
	})

	store := trajstore.NewMemStore()
	var lastID int64
	out.trajStore = timeIt(iters, func() error {
		id, err := store.AddVertex(sampleEvent(fmt.Sprintf("b#%d", lastID+1), hist))
		if err != nil {
			return err
		}
		if lastID != 0 {
			if err := store.AddEdge(lastID, id, 0.1); err != nil {
				return err
			}
		}
		lastID = id
		return nil
	})
	return out, nil
}

func sampleEvent(id string, hist feature.Histogram) protocol.DetectionEvent {
	return protocol.DetectionEvent{
		ID:        protocol.EventID(id),
		CameraID:  "bench",
		Histogram: hist,
	}
}

// timeIt returns the mean duration of fn over n runs (errors abort the
// timing and report zero).
func timeIt(n int, fn func() error) time.Duration {
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(); err != nil {
			return 0
		}
	}
	return time.Since(start) / time.Duration(n)
}
