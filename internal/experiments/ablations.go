package experiments

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/vision"
)

// intervalDetector models the detect-and-track design the paper rejected
// (Section 4.1.5): the DCNN runs only on every Nth frame; on intervening
// frames a KCF-style correlation tracker reports object positions with
// accumulating drift and occasional target loss. The output quality
// degradation — drifted boxes and dropped objects — is what made the
// design "not robust enough" on real streams.
type intervalDetector struct {
	inner vision.Detector
	every int

	mu    sync.Mutex
	count int
	rng   *rand.Rand
	lost  map[string]bool // objects the correlation tracker lost this interval
}

// KCF degradation parameters: per-frame positional drift and per-frame
// probability of losing a target until the next detection re-acquires it.
const (
	kcfDriftPxPerFrame = 1.2
	kcfLossProb        = 0.03
)

var _ vision.Detector = (*intervalDetector)(nil)

func (d *intervalDetector) Detect(f *vision.Frame) ([]vision.Detection, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sinceDetect := d.count % d.every
	d.count++
	if sinceDetect == 0 {
		// Real detection frame: the DCNN re-acquires everything.
		d.lost = make(map[string]bool)
		return d.inner.Detect(f)
	}
	dets, err := d.inner.Detect(f)
	if err != nil {
		return nil, err
	}
	out := dets[:0]
	for _, det := range dets {
		key := det.TruthID
		if key == "" {
			continue // the correlation tracker only follows acquired targets
		}
		if d.lost[key] {
			continue
		}
		if d.rng.Float64() < kcfLossProb {
			d.lost[key] = true
			continue
		}
		drift := float64(sinceDetect) * kcfDriftPxPerFrame
		det.Box.X += int(d.rng.NormFloat64() * drift)
		det.Box.Y += int(d.rng.NormFloat64() * drift)
		out = append(out, det)
	}
	return out, nil
}

// AblationSingleDeviceResult reproduces the Section 4.1.5 mapping study:
// all sub-tasks on one RPi versus the dual-device pipeline.
type AblationSingleDeviceResult struct {
	SingleFPS float64
	DualFPS   float64
	// SingleMeanLatency breaks the paper's 100 ms per-sub-task budget.
	SingleMeanLatency time.Duration
	DualMeanLatency   time.Duration
}

// AblationSingleDevice runs the timing model for both mappings.
func AblationSingleDevice() (AblationSingleDeviceResult, error) {
	p := pipeline.PaperRPi3Profile()
	single, err := pipeline.SimulateTandem(p.SingleDeviceStages(), time.Second/15, 1000)
	if err != nil {
		return AblationSingleDeviceResult{}, err
	}
	dual, err := pipeline.SimulateTandem(p.DualDeviceStages(), time.Second/15, 1000)
	if err != nil {
		return AblationSingleDeviceResult{}, err
	}
	return AblationSingleDeviceResult{
		SingleFPS:         single.ThroughputFPS,
		DualFPS:           dual.ThroughputFPS,
		SingleMeanLatency: single.MeanLatency,
		DualMeanLatency:   dual.MeanLatency,
	}, nil
}

// SerializationOption is one image-serialization choice from the design
// space (Section 4.1.5).
type SerializationOption struct {
	Name string
	// ExtraPerFrame is the added per-frame serialization cost on the RPi
	// (paper: JPEG 135 ms, NumPy ~100 ms, raw 0).
	ExtraPerFrame time.Duration
	FPS           float64
	// BreaksBudget reports whether any stage exceeds the 100 ms bound.
	BreaksBudget bool
}

// AblationSerializationResult compares raw-frame transport against
// JPEG/NumPy serialization.
type AblationSerializationResult struct {
	Options []SerializationOption
}

// AblationSerialization runs the pipeline model with each serialization
// choice added to the RPi-1 load stage.
func AblationSerialization() (AblationSerializationResult, error) {
	cases := []struct {
		name  string
		extra time.Duration
	}{
		{name: "raw", extra: 0},
		{name: "numpy", extra: 100 * time.Millisecond},
		{name: "jpeg", extra: 135 * time.Millisecond},
	}
	var res AblationSerializationResult
	for _, c := range cases {
		p := pipeline.PaperRPi3Profile()
		stages := p.DualDeviceStages()
		// Serialization happens when shipping the frame from RPi 1 to
		// RPi 2; charge it to the inference+post stage that performs the
		// hand-off.
		stages[2].Service += c.extra
		sim, err := pipeline.SimulateTandem(stages, time.Second/15, 1000)
		if err != nil {
			return AblationSerializationResult{}, err
		}
		breaks := false
		for _, s := range stages {
			if s.Service > 100*time.Millisecond {
				breaks = true
			}
		}
		res.Options = append(res.Options, SerializationOption{
			Name:          c.name,
			ExtraPerFrame: c.extra,
			FPS:           sim.ThroughputFPS,
			BreaksBudget:  breaks,
		})
	}
	return res, nil
}

// AblationDetectAndTrackResult compares per-frame detection + SORT (the
// shipped design) against detect-every-Nth-frame (the rejected
// detect-and-track design), on identical traffic.
type AblationDetectAndTrackResult struct {
	EveryFrameF2     float64
	EveryFifthF2     float64
	EveryFrameEvents int
	EveryFifthEvents int
}

// AblationDetectAndTrack measures event accuracy for both designs.
func AblationDetectAndTrack(seed int64) (AblationDetectAndTrackResult, error) {
	run := func(interval int) (float64, int, error) {
		cfg := DefaultCorridorConfig(seed)
		cfg.Vehicles = 15
		cfg.PerfectDetector = true // isolate the tracking design choice
		cfg.DetectInterval = interval
		r, err := RunCorridor(cfg)
		if err != nil {
			return 0, 0, err
		}
		var confusion metrics.Confusion
		events := 0
		for _, cam := range r.CameraIDs {
			truth, err := r.VisitsOf(cam)
			if err != nil {
				return 0, 0, err
			}
			ev := r.ScoredEventsOf(cam)
			events += len(ev)
			confusion.Add(metrics.ScoreEvents(truth, ev, 5*time.Second))
		}
		return confusion.F2(), events, nil
	}
	everyFrame, nFrame, err := run(1)
	if err != nil {
		return AblationDetectAndTrackResult{}, err
	}
	everyFifth, nFifth, err := run(5)
	if err != nil {
		return AblationDetectAndTrackResult{}, err
	}
	return AblationDetectAndTrackResult{
		EveryFrameF2:     everyFrame,
		EveryFifthF2:     everyFifth,
		EveryFrameEvents: nFrame,
		EveryFifthEvents: nFifth,
	}, nil
}
