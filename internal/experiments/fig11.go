package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/clock"
	"repro/internal/des"
	"repro/internal/protocol"
	"repro/internal/roadnet"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Fig11Point is one camera failure and the time the system took to heal.
type Fig11Point struct {
	Victim string
	KillAt time.Duration
	// Recovery is how long until every affected camera applied a
	// victim-free MDCS table.
	Recovery time.Duration
	// Affected is how many cameras referenced the victim.
	Affected int
}

// Fig11Result reproduces Figure 11: recovery time for 10 successive
// camera failures out of 37 simulated campus cameras, for one heartbeat
// interval setting.
type Fig11Result struct {
	HeartbeatInterval time.Duration
	Points            []Fig11Point
	MaxRecovery       time.Duration
	MeanRecovery      time.Duration
	// MaxOverHeartbeat is MaxRecovery / HeartbeatInterval; the paper
	// observes at most ~2.
	MaxOverHeartbeat float64
}

// Figure11 simulates the 37-camera campus deployment, kills the given
// number of randomly chosen cameras 20 s apart, and measures healing time
// under the given heartbeat interval.
func Figure11(heartbeat time.Duration, kills int, seed int64) (Fig11Result, error) {
	if heartbeat <= 0 {
		return Fig11Result{}, fmt.Errorf("experiments: heartbeat %v must be positive", heartbeat)
	}
	graph, sites, err := roadnet.Campus()
	if err != nil {
		return Fig11Result{}, err
	}
	if kills < 1 || kills > len(sites)-2 {
		return Fig11Result{}, fmt.Errorf("experiments: kills %d out of range", kills)
	}

	dsim := des.New(time.Date(2020, 12, 7, 0, 0, 0, 0, time.UTC))
	bus := transport.NewSimBus(dsim, 2*time.Millisecond)
	rng := rand.New(rand.NewSource(seed))

	serverEP, err := bus.Endpoint("topology-server")
	if err != nil {
		return Fig11Result{}, err
	}
	server, err := topology.NewServer(graph, serverEP, clock.Func(dsim.Time), topology.ServerConfig{
		// A camera is declared dead after missing most of two heartbeat
		// windows; combined with the check cadence below, healing lands
		// within ~2x the heartbeat interval, matching the paper.
		LivenessTimeout:  heartbeat + heartbeat/2,
		SnapToNodeMeters: 30,
	})
	if err != nil {
		return Fig11Result{}, err
	}
	dsim.Every(heartbeat/4, func() { server.CheckLiveness() })

	type cam struct {
		id     string
		client *topology.Client
		ticker *des.Ticker
	}
	cams := make(map[string]*cam, len(sites))
	var ids []string
	for i, site := range sites {
		node, err := graph.Node(site)
		if err != nil {
			return Fig11Result{}, err
		}
		id := fmt.Sprintf("cam%02d", i)
		ep, err := bus.Endpoint(id)
		if err != nil {
			return Fig11Result{}, err
		}
		client, err := topology.NewClient(topology.ClientConfig{
			CameraID:   id,
			ServerAddr: "topology-server",
			Position:   node.Pos,
		}, ep, clock.Func(dsim.Time))
		if err != nil {
			return Fig11Result{}, err
		}
		ep.SetHandler(func(_ context.Context, env protocol.Envelope) {
			msg, err := protocol.Open(env)
			if err != nil {
				return
			}
			if u, ok := msg.(protocol.TopologyUpdate); ok {
				client.ApplyUpdate(u)
			}
		})
		c := &cam{id: id, client: client}
		// Stagger heartbeat phases like independently booted devices.
		phase := time.Duration(rng.Int63n(int64(heartbeat)))
		dsim.Schedule(phase, func() {
			_ = client.SendHeartbeat()
			c.ticker = dsim.Every(heartbeat, func() { _ = client.SendHeartbeat() })
		})
		cams[id] = c
		ids = append(ids, id)
	}

	// Let the deployment settle.
	dsim.RunFor(heartbeat*4 + 5*time.Second)

	res := Fig11Result{HeartbeatInterval: heartbeat}
	victims := rng.Perm(len(ids))[:kills]
	for _, vi := range victims {
		victim := cams[ids[vi]]

		// Affected cameras reference the victim in their current tables.
		var affected []*cam
		for _, c := range cams {
			if c == victim || c.ticker == nil {
				continue
			}
			if tableReferences(c.client, victim.id) {
				affected = append(affected, c)
			}
		}

		killAt := dsim.Now()
		if victim.ticker != nil {
			victim.ticker.Stop()
		}
		bus.Partition(victim.id)
		delete(cams, victim.id)

		// Poll for healing at 50 ms granularity.
		recovered := time.Duration(-1)
		var poll func()
		poll = func() {
			healed := true
			for _, c := range affected {
				if tableReferences(c.client, victim.id) {
					healed = false
					break
				}
			}
			if healed {
				recovered = dsim.Now() - killAt
				return
			}
			dsim.Schedule(50*time.Millisecond, poll)
		}
		dsim.Schedule(50*time.Millisecond, poll)
		dsim.RunFor(20 * time.Second)

		if recovered < 0 {
			return Fig11Result{}, fmt.Errorf("experiments: victim %s never healed", victim.id)
		}
		res.Points = append(res.Points, Fig11Point{
			Victim:   victim.id,
			KillAt:   killAt,
			Recovery: recovered,
			Affected: len(affected),
		})
	}

	var sum time.Duration
	for _, p := range res.Points {
		sum += p.Recovery
		if p.Recovery > res.MaxRecovery {
			res.MaxRecovery = p.Recovery
		}
	}
	res.MeanRecovery = sum / time.Duration(len(res.Points))
	res.MaxOverHeartbeat = float64(res.MaxRecovery) / float64(heartbeat)
	return res, nil
}

// tableReferences reports whether a client's current MDCS table mentions
// a camera.
func tableReferences(c *topology.Client, cameraID string) bool {
	for _, refs := range c.Table() {
		for _, r := range refs {
			if r.ID == cameraID {
				return true
			}
		}
	}
	return false
}
