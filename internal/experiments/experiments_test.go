package experiments

import (
	"testing"
	"time"
)

func TestTable1ShapeMatchesPaper(t *testing.T) {
	res, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Paper: 10.4 FPS pipelined, ~5x over sequential, bottlenecked by
	// Load.
	if res.PipelinedFPS < 10.0 || res.PipelinedFPS > 10.9 {
		t.Errorf("pipelined FPS = %.2f, want ~10.4", res.PipelinedFPS)
	}
	if res.Speedup < 2.5 {
		t.Errorf("speedup = %.2f, want >> 1", res.Speedup)
	}
	if res.BottleneckStage != "load+resize" && res.BottleneckStage != "load" {
		t.Errorf("bottleneck = %q, want a load stage", res.BottleneckStage)
	}
	// Host measurements exist for the software sub-tasks and are far
	// below the RPi numbers.
	for _, row := range res.Rows {
		if row.Modeled != row.Paper {
			t.Errorf("%s: modeled %v != paper %v", row.SubTask, row.Modeled, row.Paper)
		}
		if row.MeasuredHost < 0 {
			t.Errorf("%s: negative host measurement", row.SubTask)
		}
	}
}

func TestFigure10aMessagesBeatVehicles(t *testing.T) {
	res, err := Figure10a(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 10 {
		t.Fatalf("points = %d, want most of the 16 vehicles", len(res.Points))
	}
	if !res.AllAhead {
		t.Error("some informing message arrived after its vehicle")
	}
	if res.MinHeadstart < time.Second {
		t.Errorf("min headstart = %v, want at least ~1s", res.MinHeadstart)
	}
	// Stepped structure: the traffic light bunches vehicle arrivals, so
	// consecutive arrival gaps are bimodal — some near zero (same green
	// wave), some near the light period. Check at least one large step.
	var largeStep bool
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].VehicleArrival-res.Points[i-1].VehicleArrival > 15*time.Second {
			largeStep = true
		}
	}
	if !largeStep {
		t.Error("expected stepped arrival structure from the traffic light")
	}
}

func TestFigure10bMDCSBeatsBroadcast(t *testing.T) {
	res, err := Figure10b(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MDCS) != 5 || len(res.Broadcast) != 5 {
		t.Fatalf("rows = %d/%d", len(res.MDCS), len(res.Broadcast))
	}
	// Paper: MDCS redundancy low (<= ~40%), broadcast > 83%.
	if res.MeanMDCS > 0.45 {
		t.Errorf("MDCS redundancy = %.2f, want <= 0.45", res.MeanMDCS)
	}
	if res.MeanBroadcast < 0.6 {
		t.Errorf("broadcast redundancy = %.2f, want >> MDCS", res.MeanBroadcast)
	}
	if res.MeanBroadcast <= res.MeanMDCS {
		t.Errorf("broadcast (%.2f) should exceed MDCS (%.2f)", res.MeanBroadcast, res.MeanMDCS)
	}
}

func TestFigure11RecoveryWithinTwoHeartbeats(t *testing.T) {
	for _, hb := range []time.Duration{2 * time.Second, 5 * time.Second} {
		res, err := Figure11(hb, 10, 3)
		if err != nil {
			t.Fatalf("heartbeat %v: %v", hb, err)
		}
		if len(res.Points) != 10 {
			t.Fatalf("points = %d", len(res.Points))
		}
		if res.MaxOverHeartbeat > 2.2 {
			t.Errorf("heartbeat %v: max recovery %.2fx heartbeat, paper observes <= ~2x",
				hb, res.MaxOverHeartbeat)
		}
		for _, p := range res.Points {
			if p.Recovery <= 0 {
				t.Errorf("non-positive recovery: %+v", p)
			}
		}
	}
}

func TestFigure11FasterHeartbeatHealsFaster(t *testing.T) {
	fast, err := Figure11(2*time.Second, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Figure11(5*time.Second, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if fast.MeanRecovery >= slow.MeanRecovery {
		t.Errorf("2s heartbeat mean recovery %v should beat 5s heartbeat %v",
			fast.MeanRecovery, slow.MeanRecovery)
	}
}

func TestFigure12aShape(t *testing.T) {
	res, err := Figure12a(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 37 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// MDCS stays bounded no matter the deployment size.
	if res.PeakAvg > 8 {
		t.Errorf("peak average MDCS = %.2f, should stay small", res.PeakAvg)
	}
	// Dense deployment drives the average toward 1 (paper: exactly 1
	// with a camera at every intersection; our campus keeps it near 1).
	if res.FinalAvg > 1.5 {
		t.Errorf("final average = %.2f, want ~1", res.FinalAvg)
	}
	// At 10 cameras the average sits clearly above the dense value
	// (paper: ~2.5).
	if res.AvgAt10 <= res.FinalAvg {
		t.Errorf("avg@10 (%.2f) should exceed final (%.2f)", res.AvgAt10, res.FinalAvg)
	}
}

func TestFigure12bRedundancyGrowsAsDensityDrops(t *testing.T) {
	res, err := Figure12b(13)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Paper: 0% with all five cameras, rising toward ~60% with two.
	if res.Points[0].Redundant > 0.1 {
		t.Errorf("full density redundancy = %.2f, want ~0", res.Points[0].Redundant)
	}
	last := res.Points[len(res.Points)-1].Redundant
	if last < 0.3 {
		t.Errorf("two-camera redundancy = %.2f, want large", last)
	}
	// Monotone non-decreasing (within a small tolerance for discrete
	// traffic).
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Redundant+0.08 < res.Points[i-1].Redundant {
			t.Errorf("redundancy not increasing: %+v", res.Points)
			break
		}
	}
}

func TestTable2AccuracyBands(t *testing.T) {
	res, err := Table2(17)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Paper bands: recall ~1 (>= 0.95 per camera), F2 >= 0.89, precision
	// mostly >= 0.7.
	if res.MacroRecall < 0.9 {
		t.Errorf("macro recall = %.3f, want ~1", res.MacroRecall)
	}
	if res.MacroF2 < 0.85 {
		t.Errorf("macro F2 = %.3f, want >= ~0.89", res.MacroF2)
	}
	for _, r := range res.Rows {
		if r.Visits == 0 {
			t.Errorf("%s saw no traffic", r.Camera)
		}
		if r.Recall < 0.8 {
			t.Errorf("%s recall = %.3f", r.Camera, r.Recall)
		}
	}
}

func TestReidAccuracyBand(t *testing.T) {
	res, err := ReidAccuracy(19)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transitions == 0 || res.Edges == 0 {
		t.Fatalf("empty study: %+v", res)
	}
	// Paper: overall F2 ~0.71 — noticeably below the single-camera
	// accuracy, but far above chance. The calibrated scenario lands in
	// 0.70-0.82 across seeds.
	if res.F2 < 0.55 || res.F2 > 0.9 {
		t.Errorf("re-id F2 = %.3f, want within a plausible band of 0.71", res.F2)
	}
	// Paper: vertices have at most ~2 redundant outgoing edges.
	if res.MaxOutEdges > 3 {
		t.Errorf("max outgoing edges = %d, want small", res.MaxOutEdges)
	}
}

func TestAblationSingleDevice(t *testing.T) {
	res, err := AblationSingleDevice()
	if err != nil {
		t.Fatal(err)
	}
	if res.SingleFPS*2 > res.DualFPS {
		t.Errorf("single %.2f vs dual %.2f FPS: expected a large gap", res.SingleFPS, res.DualFPS)
	}
	if res.SingleMeanLatency < 300*time.Millisecond {
		t.Errorf("single-device latency = %v, should break the budget", res.SingleMeanLatency)
	}
}

func TestAblationSerialization(t *testing.T) {
	res, err := AblationSerialization()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Options) != 3 {
		t.Fatalf("options = %d", len(res.Options))
	}
	raw, jpeg := res.Options[0], res.Options[2]
	if raw.BreaksBudget {
		t.Error("raw transport should meet the 100 ms budget")
	}
	if !jpeg.BreaksBudget {
		t.Error("JPEG serialization should break the 100 ms budget")
	}
	if jpeg.FPS >= raw.FPS {
		t.Errorf("jpeg %.2f FPS should be below raw %.2f", jpeg.FPS, raw.FPS)
	}
}

func TestAblationDetectAndTrack(t *testing.T) {
	res, err := AblationDetectAndTrack(23)
	if err != nil {
		t.Fatal(err)
	}
	if res.EveryFrameF2 < 0.9 {
		t.Errorf("per-frame detection F2 = %.3f, want ~1", res.EveryFrameF2)
	}
	if res.EveryFifthF2 >= res.EveryFrameF2 {
		t.Errorf("detect-and-track F2 %.3f should trail per-frame %.3f",
			res.EveryFifthF2, res.EveryFrameF2)
	}
}

func TestRunCorridorValidation(t *testing.T) {
	if _, err := RunCorridor(CorridorConfig{Cameras: 1, Vehicles: 1}); err == nil {
		t.Error("single camera accepted")
	}
	if _, err := RunCorridor(CorridorConfig{Cameras: 3, Vehicles: 0}); err == nil {
		t.Error("zero vehicles accepted")
	}
	if _, err := Figure11(0, 5, 1); err == nil {
		t.Error("zero heartbeat accepted")
	}
	if _, err := Figure11(time.Second, 0, 1); err == nil {
		t.Error("zero kills accepted")
	}
}

func TestThresholdSweepShape(t *testing.T) {
	res, err := ThresholdSweep(31, []float64{0.01, 0.35, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	tight, mid, loose := res.Points[0], res.Points[1], res.Points[2]
	// Too strict: recall suffers vs the calibrated threshold.
	if tight.Recall >= mid.Recall {
		t.Errorf("tight threshold recall %.2f should trail mid %.2f", tight.Recall, mid.Recall)
	}
	// Too loose: precision must not improve (the matcher still picks the
	// minimum distance, so the penalty is modest — allow a small epsilon).
	if loose.Precision > mid.Precision+0.05 {
		t.Errorf("loose threshold precision %.2f should not beat mid %.2f", loose.Precision, mid.Precision)
	}
	if res.Best.F2 < mid.F2 {
		t.Errorf("best F2 %.2f below mid %.2f", res.Best.F2, mid.F2)
	}
}

func TestBlobPipelineRunsOnPixelsAlone(t *testing.T) {
	res, err := BlobPipeline(37)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == 0 || res.Edges == 0 {
		t.Fatalf("pixels-only pipeline produced nothing: %+v", res)
	}
	// A truth-blind detector on clean synthetic frames should perform
	// close to the noise-model numbers.
	if res.EventF2 < 0.8 {
		t.Errorf("blob event F2 = %.2f", res.EventF2)
	}
	if res.ReidF2 < 0.6 {
		t.Errorf("blob reid F2 = %.2f", res.ReidF2)
	}
}
