package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/roadnet"
)

// Fig12aPoint is the average MDCS size after deploying n cameras.
type Fig12aPoint struct {
	Cameras int
	AvgMDCS float64
}

// Fig12aResult reproduces Figure 12(a): average MDCS size as 37 cameras
// are incrementally deployed in random order on the campus network.
type Fig12aResult struct {
	Points []Fig12aPoint
	// PeakAvg is the largest average observed across deployment sizes.
	PeakAvg float64
	// FinalAvg is the average with all 37 cameras deployed.
	FinalAvg float64
	// AvgAt10 is the average with 10 cameras (paper: ~2.5).
	AvgAt10 float64
}

// Figure12a incrementally deploys the campus's 37 cameras in a random
// order and measures the average MDCS size at each step.
func Figure12a(seed int64) (Fig12aResult, error) {
	graph, sites, err := roadnet.Campus()
	if err != nil {
		return Fig12aResult{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(len(sites))

	var res Fig12aResult
	for n, idx := range order {
		id := fmt.Sprintf("cam%02d", n)
		if err := graph.PlaceCameraAtNode(id, sites[idx]); err != nil {
			return Fig12aResult{}, err
		}
		avg, err := graph.AverageMDCSSize()
		if err != nil {
			return Fig12aResult{}, err
		}
		point := Fig12aPoint{Cameras: n + 1, AvgMDCS: avg}
		res.Points = append(res.Points, point)
		if avg > res.PeakAvg {
			res.PeakAvg = avg
		}
		if point.Cameras == 10 {
			res.AvgAt10 = avg
		}
	}
	res.FinalAvg = res.Points[len(res.Points)-1].AvgMDCS
	return res, nil
}

// Fig12bPoint is the redundancy at the last camera for one density
// setting.
type Fig12bPoint struct {
	ActiveCameras int
	// Deactivated lists the inactive camera indices.
	Deactivated []int
	// Redundant is the unmatched fraction of the last camera's candidate
	// pool.
	Redundant float64
}

// Fig12bResult reproduces Figure 12(b): redundancy in camera 5's
// candidate pool as cameras 4, 3, 2 are successively deactivated.
type Fig12bResult struct {
	Points []Fig12bPoint
}

// Figure12b runs the corridor at four densities over identical traffic.
func Figure12b(seed int64) (Fig12bResult, error) {
	densities := [][]int{
		nil,       // 5 active
		{4},       // 4 active
		{4, 3},    // 3 active
		{4, 3, 2}, // 2 active
	}
	var res Fig12bResult
	for _, inactive := range densities {
		cfg := DefaultCorridorConfig(seed)
		cfg.Vehicles = 30
		cfg.TurnProb = 0.25
		cfg.PerfectDetector = true
		cfg.DepartEvery = 3 * time.Second
		cfg.InactiveCameras = inactive
		run, err := RunCorridor(cfg)
		if err != nil {
			return Fig12bResult{}, err
		}
		red, err := run.RedundancyOf(CameraName(5))
		if err != nil {
			return Fig12bResult{}, err
		}
		res.Points = append(res.Points, Fig12bPoint{
			ActiveCameras: 5 - len(inactive),
			Deactivated:   inactive,
			Redundant:     red,
		})
	}
	return res, nil
}
