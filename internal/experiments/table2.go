package experiments

import (
	"fmt"
	"time"

	"repro/internal/metrics"
)

// Table2Row is one camera's event-detection accuracy.
type Table2Row struct {
	Camera    string
	Recall    float64
	Precision float64
	F2        float64
	Visits    int
	Events    int
}

// Table2Result reproduces the paper's Table 2: per-camera vehicle
// identification accuracy over ~2000 frames per camera (recall ~1.0 on
// most cameras, precision 0.7-0.95, F2 >= 0.89).
type Table2Result struct {
	Rows []Table2Row
	// MacroRecall / MacroPrecision / MacroF2 average the per-camera rows.
	MacroRecall    float64
	MacroPrecision float64
	MacroF2        float64
}

// Table2 runs the five-camera corridor with the calibrated detector noise
// model and scores each camera's detection events against ground-truth
// visits.
func Table2(seed int64) (Table2Result, error) {
	cfg := DefaultCorridorConfig(seed)
	cfg.Vehicles = 30
	cfg.DepartEvery = 4 * time.Second
	// ~133 s of traffic at 15 FPS gives the paper's ~2000 frames/camera.
	run, err := RunCorridor(cfg)
	if err != nil {
		return Table2Result{}, err
	}

	var res Table2Result
	const slack = 5 * time.Second // events fire max_age frames after exit
	for _, cam := range run.CameraIDs {
		truth, err := run.VisitsOf(cam)
		if err != nil {
			return Table2Result{}, err
		}
		events := run.ScoredEventsOf(cam)
		c := metrics.ScoreEvents(truth, events, slack)
		res.Rows = append(res.Rows, Table2Row{
			Camera:    cam,
			Recall:    c.Recall(),
			Precision: c.Precision(),
			F2:        c.F2(),
			Visits:    len(truth),
			Events:    len(events),
		})
	}
	if len(res.Rows) == 0 {
		return Table2Result{}, fmt.Errorf("experiments: table 2 produced no rows")
	}
	for _, r := range res.Rows {
		res.MacroRecall += r.Recall
		res.MacroPrecision += r.Precision
		res.MacroF2 += r.F2
	}
	n := float64(len(res.Rows))
	res.MacroRecall /= n
	res.MacroPrecision /= n
	res.MacroF2 /= n
	return res, nil
}

// ReidResult reproduces the Section 5.6 re-identification study: the
// overall F2 of the cross-camera trajectory edges (paper: ~0.71), and the
// maximum number of redundant outgoing edges on any vertex (paper: <= 2).
type ReidResult struct {
	Recall    float64
	Precision float64
	F2        float64
	// Transitions is the ground-truth transition count.
	Transitions int
	// Edges is the number of trajectory edges produced.
	Edges int
	// MaxOutEdges is the largest outgoing-edge count on any vertex.
	MaxOutEdges int
}

// ReidAccuracy runs the noisy five-camera corridor and scores the
// trajectory graph's edges against ground-truth transitions.
func ReidAccuracy(seed int64) (ReidResult, error) {
	cfg := DefaultCorridorConfig(seed)
	cfg.Vehicles = 30
	// Real traffic repeats paint colors; a small pool of distinct colors
	// plus dense departures produces the confusable candidate pools that
	// limit the paper's off-the-shelf re-id accuracy to F2 ~0.71.
	cfg.ColorPoolSize = 5
	cfg.DepartEvery = 3 * time.Second
	cfg.TurnProb = 0.3
	cfg.BrightnessJitter = 8
	run, err := RunCorridor(cfg)
	if err != nil {
		return ReidResult{}, err
	}
	truth, err := run.TruthTransitions()
	if err != nil {
		return ReidResult{}, err
	}
	edges, err := run.MatchedEdges()
	if err != nil {
		return ReidResult{}, err
	}
	c := metrics.ScoreTransitions(truth, edges)

	store := run.Sys.TrajStore()
	maxOut := 0
	for vid := int64(1); vid <= int64(store.NumVertices()); vid++ {
		if n := len(store.OutEdges(vid)); n > maxOut {
			maxOut = n
		}
	}
	return ReidResult{
		Recall:      c.Recall(),
		Precision:   c.Precision(),
		F2:          c.F2(),
		Transitions: len(truth),
		Edges:       len(edges),
		MaxOutEdges: maxOut,
	}, nil
}
