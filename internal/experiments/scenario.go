package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/camnode"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/reid"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/tracker"
	"repro/internal/vision"
)

// CorridorConfig parameterizes the shared evaluation scenario: a main
// east-west road crossed by side streets, cameras along the main road,
// vehicles that either drive through or turn off at camera-free
// intersections — the synthetic stand-in for the paper's five campus
// cameras.
type CorridorConfig struct {
	// Cameras is the number of cameras along the corridor (paper: 5).
	Cameras int
	// InactiveCameras lists camera indices (1-based) that are installed
	// in the scenario definition but not deployed, for the Figure 12(b)
	// density study.
	InactiveCameras []int
	// Vehicles is the number of simulated vehicles.
	Vehicles int
	// TurnProb is the probability a vehicle turns off the corridor at
	// each camera-free intersection.
	TurnProb float64
	// DepartEvery spaces vehicle departures.
	DepartEvery time.Duration
	// TrafficLightAfterCamera adds a light at the given camera's
	// intersection (1-based; 0 = none), producing the stepped arrivals in
	// Figure 10(a).
	TrafficLightAfterCamera int
	// Broadcast overrides every camera's MDCS to all other cameras (the
	// flooding baseline the paper compares against).
	Broadcast bool
	// PerfectDetector disables the detection noise model.
	PerfectDetector bool
	// BlobDetector runs the truth-blind pixel detector (connected
	// components over a background model) instead of the ground-truth-
	// driven noise model: the full pipeline on pixels alone.
	BlobDetector bool
	// DetectInterval runs the detector only on every Nth frame (0 or 1 =
	// every frame), modeling the rejected detect-and-track design of
	// Section 4.1.5 where the tracker must coast between detections.
	DetectInterval int
	// Seed drives vehicle colors, routes, and detector noise.
	Seed int64
	// ColorPoolSize limits vehicles to the first N palette colors (0 =
	// every vehicle distinct). Small pools model real traffic's repeated
	// paint colors, which is what makes color-histogram
	// re-identification hard (paper Section 4.1.2).
	ColorPoolSize int
	// SlackAfterLastVehicle extends the run beyond the last vehicle's
	// route completion.
	SlackAfterLastVehicle time.Duration
	// FPS overrides the 15 FPS camera default.
	FPS float64
	// BrightnessJitter gives each camera a per-camera exposure offset
	// (see core.Config.BrightnessJitter).
	BrightnessJitter int
	// MatcherThreshold overrides the re-identification Bhattacharyya
	// threshold (0 uses the prototype default).
	MatcherThreshold float64
}

// DefaultCorridorConfig mirrors the paper's five-camera deployment.
func DefaultCorridorConfig(seed int64) CorridorConfig {
	return CorridorConfig{
		Cameras:               5,
		Vehicles:              20,
		TurnProb:              0.15,
		DepartEvery:           4 * time.Second,
		Seed:                  seed,
		SlackAfterLastVehicle: 20 * time.Second,
	}
}

// EventRecord is one generated detection event with its sim-relative time
// and re-identification outcome.
type EventRecord struct {
	Event   protocol.DetectionEvent
	At      time.Duration
	Matched bool
	Dist    float64
}

// InformRecord is one informing message received by a camera.
type InformRecord struct {
	Event protocol.DetectionEvent
	At    time.Duration
}

// CorridorRun holds the collected observables of one scenario run.
type CorridorRun struct {
	Sys       *core.System
	CameraIDs []string // active cameras, west to east
	// Events, Informs, FirstSeen are keyed by camera ID.
	Events    map[string][]EventRecord
	Informs   map[string][]InformRecord
	FirstSeen map[string]map[string]time.Duration // camera -> vehicle -> time
	// CorridorLength is the number of corridor intersections.
	spacing float64
}

// CameraName returns the 1-based camera name used by the scenario.
func CameraName(i int) string { return fmt.Sprintf("cam%d", i) }

// buildCorridorGraph constructs the corridor topology: 2C+1 two-way
// corridor intersections plus one-way dead-end exit stubs at the even
// interior columns. Corridor node c has ID c; the stub off column c has
// ID 2C+1+c.
func buildCorridorGraph(cameras int, spacingMeters float64) (*roadnet.Graph, []roadnet.NodeID, error) {
	cols := 2*cameras + 1
	origin := geo.Point{Lat: 33.7756, Lon: -84.3963}
	g := roadnet.NewGraph()
	corridor := make([]roadnet.NodeID, cols)
	for c := 0; c < cols; c++ {
		id := roadnet.NodeID(c)
		pos := geo.Point{
			Lat: origin.Lat,
			Lon: origin.Lon + float64(c)*spacingMeters/(111194.0*0.8317), // cos(33.77 deg)
		}
		if err := g.AddNode(id, pos); err != nil {
			return nil, nil, err
		}
		corridor[c] = id
	}
	for c := 0; c+1 < cols; c++ {
		if err := g.AddRoad(corridor[c], corridor[c+1]); err != nil {
			return nil, nil, err
		}
	}
	for c := 2; c < cols-1; c += 2 {
		stub := roadnet.NodeID(cols + c)
		node, err := g.Node(corridor[c])
		if err != nil {
			return nil, nil, err
		}
		pos := geo.Point{Lat: node.Pos.Lat + spacingMeters/111194.0, Lon: node.Pos.Lon}
		if err := g.AddNode(stub, pos); err != nil {
			return nil, nil, err
		}
		// One-way exit: vehicles can leave but the DFS cannot route
		// around the corridor through the stub.
		if err := g.AddEdge(corridor[c], stub); err != nil {
			return nil, nil, err
		}
	}
	return g, corridor, nil
}

// RunCorridor executes the scenario and returns the collected run.
func RunCorridor(cfg CorridorConfig) (*CorridorRun, error) {
	if cfg.Cameras < 2 {
		return nil, fmt.Errorf("experiments: need >= 2 cameras, have %d", cfg.Cameras)
	}
	if cfg.Vehicles < 1 {
		return nil, fmt.Errorf("experiments: need >= 1 vehicle")
	}
	if cfg.DepartEvery <= 0 {
		cfg.DepartEvery = 4 * time.Second
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Topology: an east-west corridor of 2C+1 intersections with cameras
	// at odd columns (1, 3, 5, ...). Every even interior column is a
	// camera-free intersection with a one-way exit stub heading north —
	// vehicles that turn there leave the camera network, like side
	// streets off the paper's campus corridor.
	cols := 2*cfg.Cameras + 1
	const spacing = 100.0
	graph, corridor, err := buildCorridorGraph(cfg.Cameras, spacing)
	if err != nil {
		return nil, err
	}
	middle := func(c int) roadnet.NodeID { return corridor[c] }
	north := func(c int) roadnet.NodeID { return roadnet.NodeID(cols + c) }

	inactive := make(map[int]bool)
	for _, i := range cfg.InactiveCameras {
		inactive[i] = true
	}

	sysCfg := core.Config{
		Graph: graph,
		Seed:  cfg.Seed,
		// Keep experiment frames small so 2000-frame sweeps stay fast,
		// but scale vehicles up to ~18x9 px so detector box jitter does
		// not fragment tracks.
		CameraWidth:      192,
		CameraHeight:     144,
		PxPerMeter:       4,
		CameraFPS:        cfg.FPS,
		BrightnessJitter: cfg.BrightnessJitter,
		// Reference-SORT min_hits suppresses one-frame false-positive
		// tracks, matching the paper's high event precision.
		Tracker: tracker.Config{MaxAge: 3, MinHits: 3, IoUThreshold: 0.25},
	}
	if cfg.MatcherThreshold > 0 {
		sysCfg.Matcher = reid.MatcherConfig{BhattThreshold: cfg.MatcherThreshold}
	}
	if cfg.PerfectDetector {
		sysCfg.DetectorFactory = func(string) (vision.Detector, error) {
			return vision.PerfectDetector{}, nil
		}
	}
	if cfg.BlobDetector {
		if cfg.BrightnessJitter > 0 {
			return nil, fmt.Errorf("experiments: blob detector needs a stable background model; disable brightness jitter")
		}
		sysCfg.DetectorFactory = func(string) (vision.Detector, error) {
			blob, err := vision.NewBlobDetector(vision.DefaultBlobDetectorConfig())
			if err != nil {
				return nil, err
			}
			return &vision.TruthAttributingDetector{Inner: blob}, nil
		}
	}
	if cfg.DetectInterval > 1 {
		// Detect-and-track: a KCF-style tracker coasts between
		// detections, modeled as the Kalman filter predicting through
		// the gaps — so max_age must span several detection intervals
		// for tracks to survive at all.
		sysCfg.Tracker.MaxAge = cfg.DetectInterval * 3
		inner := sysCfg.DetectorFactory
		sysCfg.DetectorFactory = func(id string) (vision.Detector, error) {
			var base vision.Detector
			if inner != nil {
				d, err := inner(id)
				if err != nil {
					return nil, err
				}
				base = d
			} else {
				d, err := vision.NewSimDetector(vision.DefaultSimDetectorConfig(cfg.Seed))
				if err != nil {
					return nil, err
				}
				base = d
			}
			return &intervalDetector{
				inner: base,
				every: cfg.DetectInterval,
				rng:   rand.New(rand.NewSource(cfg.Seed)),
				lost:  make(map[string]bool),
			}, nil
		}
	}
	sys, err := core.NewSystem(sysCfg)
	if err != nil {
		return nil, err
	}

	run := &CorridorRun{
		Sys:       sys,
		Events:    make(map[string][]EventRecord),
		Informs:   make(map[string][]InformRecord),
		FirstSeen: make(map[string]map[string]time.Duration),
		spacing:   spacing,
	}
	epoch := sys.Sim().Epoch()

	for i := 1; i <= cfg.Cameras; i++ {
		if inactive[i] {
			continue
		}
		name := CameraName(i)
		col := 2*i - 1
		if err := sys.AddCameraAt(name, middle(col), 0); err != nil {
			return nil, err
		}
		run.CameraIDs = append(run.CameraIDs, name)
		run.FirstSeen[name] = make(map[string]time.Duration)
		node, err := sys.Node(name)
		if err != nil {
			return nil, err
		}
		node.SetHooks(camnode.Hooks{
			OnEvent: func(e protocol.DetectionEvent, matched bool, _ protocol.EventID, dist float64) {
				run.Events[name] = append(run.Events[name], EventRecord{
					Event: e, At: e.Timestamp.Sub(epoch), Matched: matched, Dist: dist,
				})
			},
			OnInformReceived: func(e protocol.DetectionEvent, at time.Time) {
				run.Informs[name] = append(run.Informs[name], InformRecord{Event: e, At: at.Sub(epoch)})
			},
			OnFirstSeen: func(truthID string, at time.Time) {
				if _, ok := run.FirstSeen[name][truthID]; !ok {
					run.FirstSeen[name][truthID] = at.Sub(epoch)
				}
			},
		})
	}

	if cfg.TrafficLightAfterCamera > 0 {
		col := 2*cfg.TrafficLightAfterCamera - 1
		err := sys.World().AddTrafficLight(sim.TrafficLight{
			Node:      middle(col),
			Period:    40 * time.Second,
			GreenFrac: 0.35,
		})
		if err != nil {
			return nil, err
		}
	}

	// Vehicles: enter at the west end of the corridor; at each even
	// interior column they may turn north and leave the network.
	for v := 0; v < cfg.Vehicles; v++ {
		route := []roadnet.NodeID{middle(0)}
		for c := 1; c < cols; c++ {
			route = append(route, middle(c))
			// Vehicles may turn off at camera-free intersections, except
			// the one between the last two cameras: in the fully
			// deployed configuration every inform from the penultimate
			// camera is then matched, mirroring the paper's 0% baseline
			// in Figure 12(b).
			if c%2 == 0 && c < cols-3 && rng.Float64() < cfg.TurnProb {
				route = append(route, north(c))
				break
			}
		}
		colorIdx := v
		if cfg.ColorPoolSize > 0 {
			colorIdx = v % cfg.ColorPoolSize
		}
		// Single-lane traffic: a uniform cruising speed keeps vehicles
		// from overtaking (and fully occluding) each other mid-corridor.
		spec := sim.VehicleSpec{
			ID:       fmt.Sprintf("veh-%02d", v),
			Color:    sim.PaletteColor(colorIdx),
			SpeedMPS: 15,
			Route:    route,
			Depart:   time.Duration(v) * cfg.DepartEvery,
		}
		if err := sys.World().AddVehicle(spec); err != nil {
			return nil, err
		}
	}

	sys.Start(context.Background())
	if cfg.Broadcast {
		// Give registration a moment, then override every camera's MDCS
		// with the full camera set (flooding baseline).
		sys.Sim().Schedule(2*time.Second, func() {
			refs := make([]protocol.CameraRef, 0, len(run.CameraIDs))
			for _, id := range run.CameraIDs {
				refs = append(refs, protocol.CameraRef{ID: id, Addr: id})
			}
			for _, id := range run.CameraIDs {
				node, err := sys.Node(id)
				if err != nil {
					continue
				}
				table := make(map[geo.Direction][]protocol.CameraRef)
				for _, d := range geo.AllDirections() {
					var others []protocol.CameraRef
					for _, r := range refs {
						if r.ID != id {
							others = append(others, r)
						}
					}
					table[d] = others
				}
				node.Topology().ApplyUpdate(protocol.TopologyUpdate{
					CameraID: id,
					Version:  1 << 40,
					MDCS:     table,
				})
			}
		})
	}

	horizon := sys.World().LastVehicleDone() + cfg.SlackAfterLastVehicle
	sys.Run(horizon)
	sys.Stop()
	if err := sys.FlushAll(); err != nil {
		return nil, err
	}
	return run, nil
}

// VisitsOf returns the ground-truth visits for a camera as metric
// intervals.
func (r *CorridorRun) VisitsOf(camera string) ([]metrics.Interval, error) {
	visits, err := r.Sys.World().Visits(camera)
	if err != nil {
		return nil, err
	}
	out := make([]metrics.Interval, 0, len(visits))
	for _, v := range visits {
		out = append(out, metrics.Interval{ID: v.VehicleID, Enter: v.Enter, Exit: v.Exit})
	}
	return out, nil
}

// ScoredEventsOf reduces a camera's generated events for scoring.
func (r *CorridorRun) ScoredEventsOf(camera string) []metrics.ScoredEvent {
	events := r.Events[camera]
	out := make([]metrics.ScoredEvent, 0, len(events))
	for _, e := range events {
		out = append(out, metrics.ScoredEvent{TruthID: e.Event.TruthID, At: e.At})
	}
	return out
}

// TruthTransitions derives the ground-truth camera-to-camera transitions
// from the recorded visits: for each vehicle, its camera visits in time
// order, pairwise.
func (r *CorridorRun) TruthTransitions() ([]metrics.Transition, error) {
	type stamped struct {
		camera string
		at     time.Duration
	}
	byVehicle := make(map[string][]stamped)
	for _, cam := range r.CameraIDs {
		visits, err := r.Sys.World().Visits(cam)
		if err != nil {
			return nil, err
		}
		for _, v := range visits {
			byVehicle[v.VehicleID] = append(byVehicle[v.VehicleID], stamped{camera: cam, at: v.Enter})
		}
	}
	var out []metrics.Transition
	for vid, stamps := range byVehicle {
		sort.Slice(stamps, func(i, j int) bool { return stamps[i].at < stamps[j].at })
		for i := 0; i+1 < len(stamps); i++ {
			out = append(out, metrics.Transition{
				VehicleID: vid,
				FromCam:   stamps[i].camera,
				ToCam:     stamps[i+1].camera,
			})
		}
	}
	return out, nil
}

// MatchedEdges reduces the trajectory graph's edges for transition
// scoring.
func (r *CorridorRun) MatchedEdges() ([]metrics.MatchedEdge, error) {
	store := r.Sys.TrajStore()
	var out []metrics.MatchedEdge
	for vid := int64(1); vid <= int64(store.NumVertices()); vid++ {
		from, err := store.Vertex(vid)
		if err != nil {
			continue
		}
		for _, e := range store.OutEdges(vid) {
			to, err := store.Vertex(e.To)
			if err != nil {
				continue
			}
			out = append(out, metrics.MatchedEdge{
				FromCam:   from.Event.CameraID,
				ToCam:     to.Event.CameraID,
				FromTruth: from.Event.TruthID,
				ToTruth:   to.Event.TruthID,
			})
		}
	}
	return out, nil
}

// RedundancyOf returns the fraction of informing messages a camera
// received that it never re-identified itself (the paper's
// "spurious/redundant events" — entries that sat in the candidate pool
// without this camera confirming the vehicle).
func (r *CorridorRun) RedundancyOf(camera string) (float64, error) {
	node, err := r.Sys.Node(camera)
	if err != nil {
		return 0, err
	}
	stats := node.Stats()
	if stats.InformsReceived == 0 {
		return 0, nil
	}
	redundant := stats.InformsReceived - stats.ReidMatches
	if redundant < 0 {
		redundant = 0
	}
	return float64(redundant) / float64(stats.InformsReceived), nil
}
