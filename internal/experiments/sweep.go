package experiments

import (
	"time"

	"repro/internal/metrics"
)

// ThresholdPoint is one Bhattacharyya-threshold setting and the resulting
// re-identification accuracy.
type ThresholdPoint struct {
	Threshold float64
	Recall    float64
	Precision float64
	F2        float64
}

// ThresholdSweepResult is the calibration curve behind the prototype's
// Bhatt_threshold choice (Section 4.1.4): too strict misses true matches
// (recall falls), too loose admits wrong vehicles (precision falls).
type ThresholdSweepResult struct {
	Points []ThresholdPoint
	// Best is the threshold with the highest F2.
	Best ThresholdPoint
}

// ThresholdSweep runs the re-identification study across a range of
// Bhattacharyya thresholds on identical traffic.
func ThresholdSweep(seed int64, thresholds []float64) (ThresholdSweepResult, error) {
	if len(thresholds) == 0 {
		thresholds = []float64{0.1, 0.2, 0.3, 0.35, 0.5, 0.7, 0.9}
	}
	var res ThresholdSweepResult
	for _, th := range thresholds {
		cfg := DefaultCorridorConfig(seed)
		cfg.Vehicles = 24
		cfg.ColorPoolSize = 5
		cfg.DepartEvery = 3 * time.Second
		cfg.TurnProb = 0.2
		cfg.BrightnessJitter = 8
		cfg.MatcherThreshold = th
		run, err := RunCorridor(cfg)
		if err != nil {
			return ThresholdSweepResult{}, err
		}
		truth, err := run.TruthTransitions()
		if err != nil {
			return ThresholdSweepResult{}, err
		}
		edges, err := run.MatchedEdges()
		if err != nil {
			return ThresholdSweepResult{}, err
		}
		c := metrics.ScoreTransitions(truth, edges)
		p := ThresholdPoint{Threshold: th, Recall: c.Recall(), Precision: c.Precision(), F2: c.F2()}
		res.Points = append(res.Points, p)
		if p.F2 > res.Best.F2 {
			res.Best = p
		}
	}
	return res, nil
}

// BlobPipelineResult reports the pixels-only pipeline study: the
// truth-blind blob detector driving the full system.
type BlobPipelineResult struct {
	EventF2 float64
	ReidF2  float64
	Events  int
	Edges   int
}

// BlobPipeline runs the corridor with the connected-components detector —
// no ground truth enters the detection path — and scores both event
// detection and re-identification.
func BlobPipeline(seed int64) (BlobPipelineResult, error) {
	cfg := DefaultCorridorConfig(seed)
	cfg.Vehicles = 16
	cfg.BlobDetector = true
	run, err := RunCorridor(cfg)
	if err != nil {
		return BlobPipelineResult{}, err
	}
	var events metrics.Confusion
	nEvents := 0
	for _, cam := range run.CameraIDs {
		truth, err := run.VisitsOf(cam)
		if err != nil {
			return BlobPipelineResult{}, err
		}
		ev := run.ScoredEventsOf(cam)
		nEvents += len(ev)
		events.Add(metrics.ScoreEvents(truth, ev, 5*time.Second))
	}
	transitions, err := run.TruthTransitions()
	if err != nil {
		return BlobPipelineResult{}, err
	}
	edges, err := run.MatchedEdges()
	if err != nil {
		return BlobPipelineResult{}, err
	}
	reid := metrics.ScoreTransitions(transitions, edges)
	return BlobPipelineResult{
		EventF2: events.F2(),
		ReidF2:  reid.F2(),
		Events:  nEvents,
		Edges:   len(edges),
	}, nil
}
