package hungarian

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForce finds the optimal assignment by enumerating permutations.
// Works for rows <= cols and small sizes.
func bruteForce(cost [][]float64) float64 {
	n, m := len(cost), len(cost[0])
	cols := make([]int, m)
	for j := range cols {
		cols[j] = j
	}
	best := math.MaxFloat64
	var permute func(k int)
	permute = func(k int) {
		if k == n {
			sum := 0.0
			for i := 0; i < n; i++ {
				sum += cost[i][cols[i]]
			}
			if sum < best {
				best = sum
			}
			return
		}
		for j := k; j < m; j++ {
			cols[k], cols[j] = cols[j], cols[k]
			permute(k + 1)
			cols[k], cols[j] = cols[j], cols[k]
		}
	}
	permute(0)
	return best
}

func TestKnownSquare(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assignment, total, err := Solve(cost)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Optimal: row0->col1 (1), row1->col0 (2), row2->col2 (2) = 5.
	if total != 5 {
		t.Errorf("total = %v, want 5 (assignment %v)", total, assignment)
	}
	want := []int{1, 0, 2}
	for i := range want {
		if assignment[i] != want[i] {
			t.Errorf("assignment = %v, want %v", assignment, want)
			break
		}
	}
}

func TestRectangularWide(t *testing.T) {
	cost := [][]float64{
		{10, 1, 10, 10},
		{10, 10, 1, 10},
	}
	assignment, total, err := Solve(cost)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if total != 2 {
		t.Errorf("total = %v, want 2", total)
	}
	if assignment[0] != 1 || assignment[1] != 2 {
		t.Errorf("assignment = %v", assignment)
	}
}

func TestRectangularTall(t *testing.T) {
	cost := [][]float64{
		{1, 9},
		{9, 1},
		{5, 5},
	}
	assignment, total, err := Solve(cost)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if total != 2 {
		t.Errorf("total = %v, want 2", total)
	}
	unassigned := 0
	seen := make(map[int]bool)
	for _, j := range assignment {
		if j == Unassigned {
			unassigned++
			continue
		}
		if seen[j] {
			t.Errorf("column %d assigned twice: %v", j, assignment)
		}
		seen[j] = true
	}
	if unassigned != 1 {
		t.Errorf("want exactly 1 unassigned row, got %d (%v)", unassigned, assignment)
	}
}

func TestSingleElement(t *testing.T) {
	assignment, total, err := Solve([][]float64{{7}})
	if err != nil || total != 7 || assignment[0] != 0 {
		t.Errorf("Solve 1x1 = %v, %v, %v", assignment, total, err)
	}
}

func TestValidation(t *testing.T) {
	if _, _, err := Solve(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("nil matrix: %v", err)
	}
	if _, _, err := Solve([][]float64{{}}); !errors.Is(err, ErrEmpty) {
		t.Errorf("zero cols: %v", err)
	}
	if _, _, err := Solve([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix should error")
	}
	if _, _, err := Solve([][]float64{{math.NaN()}}); err == nil {
		t.Error("NaN cost should error")
	}
	if _, _, err := Solve([][]float64{{math.Inf(1)}}); err == nil {
		t.Error("Inf cost should error")
	}
}

func TestNegativeCosts(t *testing.T) {
	cost := [][]float64{
		{-5, 0},
		{0, -5},
	}
	_, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != -10 {
		t.Errorf("total = %v, want -10", total)
	}
}

func TestOptimalityPropertyVsBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := n + rng.Intn(3) // rows <= cols
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = math.Round(rng.Float64()*200-100) / 10
			}
		}
		_, total, err := Solve(cost)
		if err != nil {
			return false
		}
		want := bruteForce(cost)
		return math.Abs(total-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTallOptimalityVsBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(4)
		n := m + 1 + rng.Intn(3) // rows > cols
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = rng.Float64() * 10
			}
		}
		_, total, err := Solve(cost)
		if err != nil {
			return false
		}
		// Brute force on the transpose.
		tr := make([][]float64, m)
		for j := 0; j < m; j++ {
			tr[j] = make([]float64, n)
			for i := 0; i < n; i++ {
				tr[j][i] = cost[i][j]
			}
		}
		return math.Abs(total-bruteForce(tr)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAssignmentIsValidMatching(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		m := 1 + rng.Intn(8)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = rng.NormFloat64()
			}
		}
		assignment, _, err := Solve(cost)
		if err != nil || len(assignment) != n {
			return false
		}
		seen := make(map[int]bool)
		assigned := 0
		for _, j := range assignment {
			if j == Unassigned {
				continue
			}
			if j < 0 || j >= m || seen[j] {
				return false
			}
			seen[j] = true
			assigned++
		}
		return assigned == min(n, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSolveMax(t *testing.T) {
	benefit := [][]float64{
		{0.9, 0.1},
		{0.2, 0.8},
	}
	assignment, total, err := SolveMax(benefit)
	if err != nil {
		t.Fatal(err)
	}
	if assignment[0] != 0 || assignment[1] != 1 {
		t.Errorf("assignment = %v", assignment)
	}
	if math.Abs(total-1.7) > 1e-9 {
		t.Errorf("total = %v, want 1.7", total)
	}
}
