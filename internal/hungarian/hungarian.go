// Package hungarian solves the linear assignment problem in O(n³) using
// the Kuhn-Munkres algorithm with potentials. The SORT tracker uses it to
// match detections to predicted tracks by maximizing total IoU (expressed
// here as minimizing negated IoU).
package hungarian

import (
	"errors"
	"fmt"
	"math"
)

// Unassigned marks a row that received no column (possible when the cost
// matrix has more rows than columns).
const Unassigned = -1

// ErrEmpty is returned when the cost matrix has no rows or no columns.
var ErrEmpty = errors.New("hungarian: empty cost matrix")

// Solve returns a minimum-cost assignment for the given cost matrix. The
// result maps each row index to its assigned column index (or Unassigned),
// along with the total cost of the assigned pairs. Every column is used at
// most once. The matrix may be rectangular; all rows must have the same
// length and costs must be finite.
func Solve(cost [][]float64) (assignment []int, total float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, ErrEmpty
	}
	m := len(cost[0])
	if m == 0 {
		return nil, 0, ErrEmpty
	}
	for i, row := range cost {
		if len(row) != m {
			return nil, 0, fmt.Errorf("hungarian: row %d has %d entries, want %d", i, len(row), m)
		}
		for j, c := range row {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, 0, fmt.Errorf("hungarian: non-finite cost at (%d,%d)", i, j)
			}
		}
	}

	if n > m {
		// Transpose so rows <= cols, solve, then invert the mapping.
		tr := make([][]float64, m)
		for j := 0; j < m; j++ {
			tr[j] = make([]float64, n)
			for i := 0; i < n; i++ {
				tr[j][i] = cost[i][j]
			}
		}
		colAssign, tot, err := Solve(tr)
		if err != nil {
			return nil, 0, err
		}
		assignment = make([]int, n)
		for i := range assignment {
			assignment[i] = Unassigned
		}
		for j, i := range colAssign {
			if i != Unassigned {
				assignment[i] = j
			}
		}
		return assignment, tot, nil
	}

	// Kuhn-Munkres with potentials, 1-indexed (index 0 is a sentinel).
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1)   // p[j] = row matched to column j
	way := make([]int, m+1) // alternating-path parents
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	assignment = make([]int, n)
	for i := range assignment {
		assignment[i] = Unassigned
	}
	for j := 1; j <= m; j++ {
		if p[j] != 0 {
			assignment[p[j]-1] = j - 1
		}
	}
	for i, j := range assignment {
		if j != Unassigned {
			total += cost[i][j]
		}
	}
	return assignment, total, nil
}

// SolveMax returns a maximum-benefit assignment by negating the matrix and
// minimizing. The returned total is the sum of the assigned benefits.
func SolveMax(benefit [][]float64) (assignment []int, total float64, err error) {
	neg := make([][]float64, len(benefit))
	for i, row := range benefit {
		neg[i] = make([]float64, len(row))
		for j, b := range row {
			neg[i][j] = -b
		}
	}
	assignment, total, err = Solve(neg)
	return assignment, -total, err
}
