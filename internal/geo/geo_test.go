package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceMeters(t *testing.T) {
	tests := []struct {
		name    string
		p, q    Point
		want    float64
		tolFrac float64
	}{
		{
			name:    "same point",
			p:       Point{Lat: 33.7756, Lon: -84.3963},
			q:       Point{Lat: 33.7756, Lon: -84.3963},
			want:    0,
			tolFrac: 0,
		},
		{
			name: "one degree latitude",
			p:    Point{Lat: 0, Lon: 0},
			q:    Point{Lat: 1, Lon: 0},
			// One degree of latitude is ~111.19 km.
			want:    111194,
			tolFrac: 0.01,
		},
		{
			name: "one degree longitude at 60N",
			p:    Point{Lat: 60, Lon: 0},
			q:    Point{Lat: 60, Lon: 1},
			// cos(60 deg) = 0.5, so half the equatorial arc.
			want:    55597,
			tolFrac: 0.01,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.p.DistanceMeters(tt.q)
			if diff := math.Abs(got - tt.want); diff > tt.want*tt.tolFrac+1e-9 {
				t.Errorf("DistanceMeters() = %v, want %v ± %v%%", got, tt.want, tt.tolFrac*100)
			}
		})
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		clamp := func(v, lo, hi float64) float64 {
			return math.Mod(math.Abs(v), hi-lo) + lo
		}
		p := Point{Lat: clamp(lat1, -80, 80), Lon: clamp(lon1, -180, 180)}
		q := Point{Lat: clamp(lat2, -80, 80), Lon: clamp(lon2, -180, 180)}
		d1, d2 := p.DistanceMeters(q), q.DistanceMeters(p)
		return math.Abs(d1-d2) < 1e-6*(1+d1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBearingDegrees(t *testing.T) {
	origin := Point{Lat: 33.0, Lon: -84.0}
	tests := []struct {
		name string
		to   Point
		want float64
	}{
		{"north", Point{Lat: 33.01, Lon: -84.0}, 0},
		{"east", Point{Lat: 33.0, Lon: -83.99}, 90},
		{"south", Point{Lat: 32.99, Lon: -84.0}, 180},
		{"west", Point{Lat: 33.0, Lon: -84.01}, 270},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := origin.BearingDegrees(tt.to)
			if AngularDiffDegrees(got, tt.want) > 0.5 {
				t.Errorf("BearingDegrees() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestLerp(t *testing.T) {
	p := Point{Lat: 0, Lon: 0}
	q := Point{Lat: 10, Lon: 20}
	if got := p.Lerp(q, 0.5); got.Lat != 5 || got.Lon != 10 {
		t.Errorf("Lerp(0.5) = %v", got)
	}
	if got := p.Lerp(q, -1); got != p {
		t.Errorf("Lerp clamps low: got %v", got)
	}
	if got := p.Lerp(q, 2); got != q {
		t.Errorf("Lerp clamps high: got %v", got)
	}
}

func TestDirectionFromBearing(t *testing.T) {
	tests := []struct {
		deg  float64
		want Direction
	}{
		{0, North},
		{10, North},
		{-10, North},
		{350, North},
		{45, NorthEast},
		{90, East},
		{135, SouthEast},
		{180, South},
		{225, SouthWest},
		{270, West},
		{315, NorthWest},
		{22.4, North},
		{22.6, NorthEast},
		{359.9, North},
		{720 + 90, East},
	}
	for _, tt := range tests {
		if got := DirectionFromBearing(tt.deg); got != tt.want {
			t.Errorf("DirectionFromBearing(%v) = %v, want %v", tt.deg, got, tt.want)
		}
	}
	if got := DirectionFromBearing(math.NaN()); got != DirectionInvalid {
		t.Errorf("DirectionFromBearing(NaN) = %v, want invalid", got)
	}
}

func TestDirectionOpposite(t *testing.T) {
	tests := []struct {
		d, want Direction
	}{
		{North, South},
		{South, North},
		{East, West},
		{West, East},
		{NorthEast, SouthWest},
		{SouthEast, NorthWest},
		{DirectionInvalid, DirectionInvalid},
	}
	for _, tt := range tests {
		if got := tt.d.Opposite(); got != tt.want {
			t.Errorf("%v.Opposite() = %v, want %v", tt.d, got, tt.want)
		}
	}
}

func TestOppositeIsInvolution(t *testing.T) {
	for _, d := range AllDirections() {
		if got := d.Opposite().Opposite(); got != d {
			t.Errorf("%v.Opposite().Opposite() = %v", d, got)
		}
	}
}

func TestDirectionBearingRoundTrip(t *testing.T) {
	for _, d := range AllDirections() {
		if got := DirectionFromBearing(d.Bearing()); got != d {
			t.Errorf("round trip %v -> %v", d, got)
		}
	}
}

func TestDirectionString(t *testing.T) {
	if North.String() != "N" || SouthWest.String() != "SW" {
		t.Error("unexpected direction names")
	}
	if Direction(99).String() != "Direction(99)" {
		t.Errorf("out-of-range name: %v", Direction(99).String())
	}
}

func TestDirectionValid(t *testing.T) {
	if DirectionInvalid.Valid() {
		t.Error("invalid must not be valid")
	}
	for _, d := range AllDirections() {
		if !d.Valid() {
			t.Errorf("%v should be valid", d)
		}
	}
	if Direction(9).Valid() {
		t.Error("out of range must not be valid")
	}
}

func TestAngularDiffDegrees(t *testing.T) {
	tests := []struct {
		a, b, want float64
	}{
		{0, 0, 0},
		{0, 180, 180},
		{10, 350, 20},
		{350, 10, 20},
		{90, 270, 180},
		{0, 360, 0},
	}
	for _, tt := range tests {
		if got := AngularDiffDegrees(tt.a, tt.b); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("AngularDiffDegrees(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestBearingLerpConsistency(t *testing.T) {
	// The bearing from p to a lerped midpoint matches the bearing to q.
	p := Point{Lat: 33.77, Lon: -84.39}
	q := Point{Lat: 33.78, Lon: -84.38}
	mid := p.Lerp(q, 0.5)
	if AngularDiffDegrees(p.BearingDegrees(mid), p.BearingDegrees(q)) > 1.0 {
		t.Error("bearing to midpoint should match bearing to endpoint")
	}
}
