// Package geo provides small geographic primitives used by the road-network
// and camera-topology layers: lat/lon points, planar distance and bearing
// computations, and the 8-way quantized travel directions that key the
// minimum-downstream-camera-set (MDCS) tables.
package geo

import (
	"fmt"
	"math"
)

// earthRadiusMeters is the mean Earth radius used by the equirectangular
// distance approximation. Campus- and city-scale deployments are far below
// the scale where the approximation error matters.
const earthRadiusMeters = 6371000.0

// Point is a WGS84 latitude/longitude pair in degrees.
type Point struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.6f,%.6f)", p.Lat, p.Lon)
}

// DistanceMeters returns the approximate ground distance between p and q
// using the equirectangular projection, which is accurate to well under a
// meter at deployment scales (a few kilometers).
func (p Point) DistanceMeters(q Point) float64 {
	latRad := (p.Lat + q.Lat) / 2 * math.Pi / 180
	dx := (q.Lon - p.Lon) * math.Pi / 180 * math.Cos(latRad)
	dy := (q.Lat - p.Lat) * math.Pi / 180
	return math.Sqrt(dx*dx+dy*dy) * earthRadiusMeters
}

// BearingDegrees returns the initial compass bearing from p to q in
// [0, 360), where 0 is north and 90 is east.
func (p Point) BearingDegrees(q Point) float64 {
	latRad := (p.Lat + q.Lat) / 2 * math.Pi / 180
	dx := (q.Lon - p.Lon) * math.Cos(latRad)
	dy := q.Lat - p.Lat
	deg := math.Atan2(dx, dy) * 180 / math.Pi
	if deg < 0 {
		deg += 360
	}
	return deg
}

// Lerp returns the point a fraction t of the way from p to q, with t
// clamped to [0, 1].
func (p Point) Lerp(q Point, t float64) Point {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return Point{
		Lat: p.Lat + (q.Lat-p.Lat)*t,
		Lon: p.Lon + (q.Lon-p.Lon)*t,
	}
}

// Direction is one of eight quantized compass travel directions. Vehicles
// leaving a camera's field of view are tagged with a Direction, and the
// camera's MDCS table is keyed by it.
type Direction int

// The eight compass directions, starting at one so that the zero value is
// an invalid direction (DirectionInvalid).
const (
	DirectionInvalid Direction = iota
	North
	NorthEast
	East
	SouthEast
	South
	SouthWest
	West
	NorthWest
)

// numDirections is the count of valid compass directions.
const numDirections = 8

var directionNames = [...]string{
	DirectionInvalid: "invalid",
	North:            "N",
	NorthEast:        "NE",
	East:             "E",
	SouthEast:        "SE",
	South:            "S",
	SouthWest:        "SW",
	West:             "W",
	NorthWest:        "NW",
}

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d < DirectionInvalid || d > NorthWest {
		return fmt.Sprintf("Direction(%d)", int(d))
	}
	return directionNames[d]
}

// Valid reports whether d is one of the eight compass directions.
func (d Direction) Valid() bool {
	return d >= North && d <= NorthWest
}

// Opposite returns the direction 180 degrees from d. The opposite of an
// invalid direction is invalid.
func (d Direction) Opposite() Direction {
	if !d.Valid() {
		return DirectionInvalid
	}
	o := d + numDirections/2
	if o > NorthWest {
		o -= numDirections
	}
	return o
}

// Bearing returns the center compass bearing of d in degrees.
func (d Direction) Bearing() float64 {
	if !d.Valid() {
		return math.NaN()
	}
	return float64(d-North) * (360.0 / numDirections)
}

// DirectionFromBearing quantizes a compass bearing in degrees into one of
// the eight directions. Bearings outside [0, 360) are normalized first.
func DirectionFromBearing(deg float64) Direction {
	if math.IsNaN(deg) || math.IsInf(deg, 0) {
		return DirectionInvalid
	}
	deg = math.Mod(deg, 360)
	if deg < 0 {
		deg += 360
	}
	// Each direction owns a 45-degree sector centered on its bearing.
	idx := int(math.Floor(deg/45.0+0.5)) % numDirections
	return North + Direction(idx)
}

// AllDirections returns the eight valid directions in compass order.
func AllDirections() []Direction {
	out := make([]Direction, 0, numDirections)
	for d := North; d <= NorthWest; d++ {
		out = append(out, d)
	}
	return out
}

// AngularDiffDegrees returns the absolute angular difference between two
// bearings in degrees, in [0, 180].
func AngularDiffDegrees(a, b float64) float64 {
	d := math.Mod(math.Abs(a-b), 360)
	if d > 180 {
		d = 360 - d
	}
	return d
}
