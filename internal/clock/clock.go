// Package clock abstracts the source of wall-clock time so that the same
// components run against the real clock in deployments and against the
// discrete-event simulator's virtual clock in experiments.
package clock

import "time"

// Clock supplies the current instant.
type Clock interface {
	Now() time.Time
}

// Real is a Clock backed by the system clock.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Func adapts a function to the Clock interface, which is how the
// discrete-event simulator's virtual clock is injected:
//
//	c := clock.Func(sim.Time)
type Func func() time.Time

var _ Clock = Func(nil)

// Now implements Clock.
func (f Func) Now() time.Time { return f() }

// Fixed is a Clock pinned to a single instant, useful in tests.
type Fixed struct{ T time.Time }

var _ Clock = Fixed{}

// Now implements Clock.
func (f Fixed) Now() time.Time { return f.T }
