package clock

import (
	"testing"
	"time"
)

func TestReal(t *testing.T) {
	before := time.Now()
	got := Real{}.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Errorf("Real.Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestFunc(t *testing.T) {
	want := time.Date(2020, 12, 7, 12, 0, 0, 0, time.UTC)
	c := Func(func() time.Time { return want })
	if !c.Now().Equal(want) {
		t.Errorf("Func.Now() = %v, want %v", c.Now(), want)
	}
}

func TestFixed(t *testing.T) {
	want := time.Date(2020, 12, 7, 12, 0, 0, 0, time.UTC)
	c := Fixed{T: want}
	if !c.Now().Equal(want) {
		t.Errorf("Fixed.Now() = %v, want %v", c.Now(), want)
	}
}
