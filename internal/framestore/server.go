package framestore

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// Server receives FrameRecord envelopes from cameras and stores them.
type Server struct {
	store *Store
	ep    transport.Endpoint

	mu       sync.Mutex
	received int64
	errors   int64
	closed   bool
	drainObs uint64

	inflight sync.WaitGroup
	drain    *obs.Histogram
	clk      clock.Clock
}

// NewServer installs the handler on ep and returns the server.
func NewServer(store *Store, ep transport.Endpoint) (*Server, error) {
	if store == nil || ep == nil {
		return nil, errors.New("framestore: store and endpoint required")
	}
	s := &Server{store: store, ep: ep, drain: new(obs.Histogram), clk: clock.Real{}}
	ep.SetHandler(s.handle)
	return s, nil
}

// Use re-homes the server's shutdown telemetry
// (coralpie_framestore_shutdown_drain_seconds) onto reg and times the
// drain with clk (nil keeps the current clock). Call before Shutdown.
func (s *Server) Use(reg *obs.Registry, clk clock.Clock) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if reg != nil {
		s.drain = reg.Histogram("coralpie_framestore_shutdown_drain_seconds",
			"graceful-shutdown drain duration", nil)
	}
	if clk != nil {
		s.clk = clk
	}
}

func (s *Server) handle(ctx context.Context, env protocol.Envelope) {
	s.mu.Lock()
	if s.closed {
		// Intake is stopped: frames arriving mid-shutdown are dropped
		// silently, same as a fire-and-forget datagram to a gone peer.
		s.mu.Unlock()
		return
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()

	if ctx.Err() != nil {
		// The endpoint is shutting down; drop rather than write to a
		// store that may already be flushing its logs closed.
		s.count(false)
		return
	}
	msg, err := protocol.Open(env)
	if err != nil {
		s.count(false)
		return
	}
	rec, ok := msg.(protocol.FrameRecord)
	if !ok {
		s.count(false)
		return
	}
	if err := s.store.Put(rec); err != nil {
		s.count(false)
		return
	}
	s.count(true)
}

// Shutdown gracefully stops the server: intake is cut first (frames
// arriving afterwards are dropped), in-flight handlers drain bounded by
// ctx, and the store is then closed, flushing its buffered log writers.
// The drain duration lands in the shutdown histogram. Idempotent; on
// ctx expiry the store is left open so the caller can still force-close
// it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	clk := s.clk
	s.mu.Unlock()

	start := clk.Now()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("framestore: shutdown drain: %w", ctx.Err())
	}
	err := s.store.Close()
	s.mu.Lock()
	s.drain.Observe(clk.Now().Sub(start).Seconds())
	s.drainObs++
	s.mu.Unlock()
	return err
}

// DrainObservations returns how many graceful shutdowns have recorded a
// drain duration (at most one per server; exposed for tests and
// telemetry wiring).
func (s *Server) DrainObservations() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drainObs
}

func (s *Server) count(ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ok {
		s.received++
	} else {
		s.errors++
	}
}

// Stats returns the number of records stored and handler errors.
func (s *Server) Stats() (received, errs int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received, s.errors
}
