package framestore

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/protocol"
)

// BenchmarkFramestore measures the read path under write pressure — the
// deployment steady state, where trajectory verification fetches
// evidence frames while cameras keep streaming new ones.
//
// segmented is the shipped engine: Get resolves the index and pins a
// refcounted segment handle under the store mutex, then does its disk
// read outside every lock. serialized-baseline emulates the seed
// engine, which held one store-wide mutex across the whole operation —
// every disk write stalled every read. Both run cache-disabled so the
// delta isolates the locking change; cached adds the read-through LRU
// on top.
func BenchmarkFramestore(b *testing.B) {
	b.Run("read-while-write/serialized-baseline", func(b *testing.B) {
		benchReadsUnderWrites(b, Config{}, true)
	})
	b.Run("read-while-write/segmented", func(b *testing.B) {
		benchReadsUnderWrites(b, Config{}, false)
	})
	b.Run("read-while-write/segmented-cached", func(b *testing.B) {
		benchReadsUnderWrites(b, Config{CacheFrames: 1024}, false)
	})
	b.Run("write/retention-off", func(b *testing.B) {
		benchWrites(b, Config{SegmentBytes: 1 << 20})
	})
	b.Run("write/retention-on", func(b *testing.B) {
		benchWrites(b, Config{SegmentBytes: 1 << 20, RetainBytes: 8 << 20})
	})
}

const benchPreload = 512

func benchReadsUnderWrites(b *testing.B, cfg Config, serialized bool) {
	s, err := OpenStoreConfig(b.TempDir(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = s.Close() }()

	// A single mutex wrapping both paths reproduces the seed's locking:
	// reads and writes serialize against each other, disk IO included.
	var mu sync.Mutex
	get := s.Get
	put := s.Put
	if serialized {
		get = func(camera string, seq int64) (protocol.FrameRecord, error) {
			mu.Lock()
			defer mu.Unlock()
			return s.Get(camera, seq)
		}
		put = func(rec protocol.FrameRecord) error {
			mu.Lock()
			defer mu.Unlock()
			return s.Put(rec)
		}
	}

	for seq := int64(1); seq <= benchPreload; seq++ {
		if err := s.Put(record("cam1", seq)); err != nil {
			b.Fatal(err)
		}
	}

	// The writer streams frames for the benchmark's whole duration,
	// pacing itself so every run sees comparable write pressure
	// regardless of reader count.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		seq := int64(benchPreload)
		for {
			select {
			case <-stop:
				return
			default:
			}
			seq++
			if err := put(record("cam1", seq)); err != nil {
				b.Errorf("writer: %v", err)
				return
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()

	var n atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			seq := n.Add(1)%benchPreload + 1
			if _, err := get("cam1", seq); err != nil {
				b.Errorf("get %d: %v", seq, err)
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}

func benchWrites(b *testing.B, cfg Config) {
	s, err := OpenStoreConfig(b.TempDir(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(record("cam1", int64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if cfg.RetainBytes > 0 {
		b.ReportMetric(float64(s.DiskBytes()), "disk-bytes")
	}
}
