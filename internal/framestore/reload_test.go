package framestore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// appendRaw appends length-prefixed bytes to a file, simulating a write
// that landed on disk outside the store's control (crash replay, torn
// write, bit rot).
func appendRaw(t *testing.T, path string, payload []byte, declaredLen int) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(declaredLen))
	if _, err := f.Write(lenBuf[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(payload); err != nil {
		t.Fatal(err)
	}
}

// activeSegPath returns the camera's newest segment file.
func activeSegPath(t *testing.T, dir, camera string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, camera+".*"+segSuffix))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segments for %s: %v", camera, err)
	}
	return matches[len(matches)-1]
}

func writeAndClose(t *testing.T, dir string, seqs ...int64) {
	t.Helper()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range seqs {
		if err := s.Put(record("cam1", seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReloadDedupesDuplicateRecords(t *testing.T) {
	dir := t.TempDir()
	writeAndClose(t, dir, 1, 2, 3)

	// A crash-replayed append: seq 2 lands on disk a second time.
	dup, err := json.Marshal(record("cam1", 2))
	if err != nil {
		t.Fatal(err)
	}
	appendRaw(t, activeSegPath(t, dir, "cam1"), dup, len(dup))

	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	if got := s.Count("cam1"); got != 3 {
		t.Errorf("Count = %d, want 3 (duplicate must not overcount)", got)
	}
	recs, err := s.Range("cam1", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("Range returned %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Seq != int64(i+1) {
			t.Errorf("Range[%d].Seq = %d, want %d", i, r.Seq, i+1)
		}
	}
	if st := s.ReloadStats(); st.DuplicateRecords != 1 {
		t.Errorf("DuplicateRecords = %d, want 1 (stats: %+v)", st.DuplicateRecords, st)
	}
}

func TestReloadSalvagesAfterCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	writeAndClose(t, dir, 1, 2, 3)
	path := activeSegPath(t, dir, "cam1")

	// Rot the middle record's payload in place, framing intact: read
	// record 1's length to find record 2, then scribble inside it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n1 := binary.BigEndian.Uint32(data[:4])
	off2 := 4 + int(n1) + 4 // start of record 2's payload
	copy(data[off2:off2+8], "********")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	// The seed engine treated any decode failure as a tail and silently
	// discarded record 3; the salvaging scan keeps it.
	if got := s.Count("cam1"); got != 2 {
		t.Errorf("Count = %d, want 2 (records 1 and 3 salvaged)", got)
	}
	if _, err := s.Get("cam1", 3); err != nil {
		t.Errorf("record after the corrupt one must survive: %v", err)
	}
	if _, err := s.Get("cam1", 2); !errors.Is(err, ErrNotFound) {
		t.Errorf("corrupt record: got %v, want ErrNotFound", err)
	}
	st := s.ReloadStats()
	if st.CorruptRecords != 1 || st.TornTails != 0 {
		t.Errorf("stats = %+v, want CorruptRecords=1 TornTails=0", st)
	}

	// Appending after salvage does not clobber salvaged records.
	if err := s.Put(record("cam1", 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("cam1", 3); err != nil {
		t.Errorf("salvaged record overwritten by append: %v", err)
	}
}

func TestReloadTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	writeAndClose(t, dir, 1, 2)
	path := activeSegPath(t, dir, "cam1")

	// A torn write: the length prefix declares 100 bytes, only 10 landed.
	appendRaw(t, path, make([]byte, 10), 100)
	before, _ := os.Stat(path)

	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Count("cam1"); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
	st := s.ReloadStats()
	if st.TornTails != 1 || st.TruncatedBytes != 14 {
		t.Errorf("stats = %+v, want TornTails=1 TruncatedBytes=14", st)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size()-14 {
		t.Errorf("tail not truncated: %d -> %d", before.Size(), after.Size())
	}

	// Reload-then-append round-trip: the truncated tail's bytes are reused.
	if err := s.Put(record("cam1", 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = re.Close() }()
	if got := re.Count("cam1"); got != 3 {
		t.Errorf("Count after append+reload = %d, want 3", got)
	}
	if st := re.ReloadStats(); st.TornTails != 0 || st.DuplicateRecords != 0 {
		t.Errorf("second reload found damage: %+v", st)
	}
}

func TestReloadCorruptLengthPrefix(t *testing.T) {
	dir := t.TempDir()
	writeAndClose(t, dir, 1)
	path := activeSegPath(t, dir, "cam1")

	// An impossible length gives no resync point: everything after it is
	// unreadable and must be truncated, even if more bytes follow.
	appendRaw(t, path, make([]byte, 64), maxRecordBytes+1)

	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	if got := s.Count("cam1"); got != 1 {
		t.Errorf("Count = %d, want 1", got)
	}
	st := s.ReloadStats()
	if st.TornTails != 1 || st.TruncatedBytes != 68 {
		t.Errorf("stats = %+v, want TornTails=1 TruncatedBytes=68", st)
	}
}

func TestReloadMigratesLegacyLog(t *testing.T) {
	dir := t.TempDir()
	// A pre-segment "<camera>.frames" log: length-prefixed records,
	// exactly what the seed engine wrote.
	var raw []byte
	for seq := int64(1); seq <= 3; seq++ {
		data, err := json.Marshal(record("cam1", seq))
		if err != nil {
			t.Fatal(err)
		}
		var lenBuf [4]byte
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(data)))
		raw = append(raw, lenBuf[:]...)
		raw = append(raw, data...)
	}
	legacy := filepath.Join(dir, "cam1"+legacySuffix)
	if err := os.WriteFile(legacy, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Count("cam1"); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	if _, err := os.Stat(legacy); !errors.Is(err, os.ErrNotExist) {
		t.Error("legacy log not renamed away")
	}
	if _, err := os.Stat(filepath.Join(dir, "cam1"+manifestSuffix)); err != nil {
		t.Errorf("no manifest after migration: %v", err)
	}
	// The migrated log accepts appends and survives another reload.
	if err := s.Put(record("cam1", 4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = re.Close() }()
	if got := re.Count("cam1"); got != 4 {
		t.Errorf("Count after migrate+append+reload = %d, want 4", got)
	}
}

func TestReloadDeletesStraySegments(t *testing.T) {
	dir := t.TempDir()
	writeAndClose(t, dir, 1, 2)

	// A GC that wrote its manifest but crashed before the unlink leaves a
	// segment file on disk that the manifest no longer lists. Its frames
	// were garbage-collected; they must not resurrect as phantoms.
	stray := segPath(dir, "cam1", 99)
	data, err := json.Marshal(record("cam1", 77))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(stray, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	appendRaw(t, stray, data, len(data))

	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	if got := s.Count("cam1"); got != 2 {
		t.Errorf("Count = %d, want 2 (phantom frame resurrected)", got)
	}
	if _, err := s.Get("cam1", 77); !errors.Is(err, ErrNotFound) {
		t.Errorf("GC'd frame resurrected: %v", err)
	}
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Error("stray segment not deleted")
	}
	if st := s.ReloadStats(); st.StraySegments != 1 {
		t.Errorf("StraySegments = %d, want 1", st.StraySegments)
	}
}

func TestReloadListedButMissingSegment(t *testing.T) {
	// A roll persists the manifest before creating the segment file; a
	// crash in between leaves a listed id with no file. Open must treat
	// it as empty, not fail.
	dir := t.TempDir()
	s, err := OpenStoreConfig(dir, Config{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	// SegmentBytes=1: every put seals its segment and rolls.
	for seq := int64(1); seq <= 3; seq++ {
		if err := s.Put(record("cam1", seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: delete the newest segment's file but keep it in
	// the manifest.
	if err := os.Remove(activeSegPath(t, dir, "cam1")); err != nil {
		t.Fatal(err)
	}

	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = re.Close() }()
	if got := re.Count("cam1"); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
	if err := re.Put(record("cam1", 4)); err != nil {
		t.Fatalf("append into recreated segment: %v", err)
	}
}

func TestSegmentRollPersistence(t *testing.T) {
	// Multi-segment writes survive a reload with every record readable.
	dir := t.TempDir()
	s, err := OpenStoreConfig(dir, Config{SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for seq := int64(1); seq <= n; seq++ {
		if err := s.Put(record("cam1", seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "cam1.*"+segSuffix))
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}

	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = re.Close() }()
	if got := re.Count("cam1"); got != n {
		t.Errorf("Count = %d, want %d", got, n)
	}
	recs, err := re.Range("cam1", 1, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("Range returned %d, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Seq != int64(i+1) {
			t.Fatalf("Range[%d].Seq = %d, want %d", i, r.Seq, i+1)
		}
	}
}
