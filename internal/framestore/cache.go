package framestore

import (
	"container/list"
	"strconv"
	"sync"

	"repro/internal/protocol"
)

// frameCache is a small read-through LRU over decoded frame records,
// keyed by (camera, seq). It absorbs repeated fetches of hot frames —
// a trajectory-verification UI re-reading the same evidence — without
// re-decoding from disk. Records are immutable, so cached copies never
// go stale; GC deleting a segment leaves its cached frames readable
// until evicted, which is fine (the frames were valid when stored).
type frameCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List               // front = most recently used
	m   map[string]*list.Element // cacheKey -> element holding *cacheEntry
}

type cacheEntry struct {
	key string
	rec protocol.FrameRecord
}

func cacheKey(camera string, seq int64) string {
	return camera + "\x00" + strconv.FormatInt(seq, 10)
}

func newFrameCache(capacity int) *frameCache {
	return &frameCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[string]*list.Element, capacity),
	}
}

func (c *frameCache) get(camera string, seq int64) (protocol.FrameRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[cacheKey(camera, seq)]
	if !ok {
		return protocol.FrameRecord{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).rec, true
}

func (c *frameCache) add(camera string, seq int64, rec protocol.FrameRecord) {
	key := cacheKey(camera, seq)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).rec = rec
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, rec: rec})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the current number of cached records (for tests).
func (c *frameCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
