package framestore

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/rpc"
	"repro/internal/transport"
)

// replicaRig wires n framestore servers on one bus and returns their
// stores plus a camera endpoint.
func replicaRig(t *testing.T, n int) (*transport.Bus, []string, []*Store, transport.Endpoint) {
	t.Helper()
	bus := transport.NewBus()
	addrs := make([]string, n)
	stores := make([]*Store, n)
	for i := 0; i < n; i++ {
		addrs[i] = []string{"fs-a", "fs-b", "fs-c"}[i]
		ep, err := bus.Endpoint(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		st, err := OpenStore("")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = st.Close() })
		if _, err := NewServer(st, ep); err != nil {
			t.Fatal(err)
		}
		stores[i] = st
	}
	cam, err := bus.Endpoint("cam1")
	if err != nil {
		t.Fatal(err)
	}
	return bus, addrs, stores, cam
}

func TestMultiClientReplicatesToAll(t *testing.T) {
	_, addrs, stores, cam := replicaRig(t, 3)
	mc, err := NewMultiClient(cam, addrs, MultiClientConfig{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(1); seq <= 5; seq++ {
		if err := mc.StoreFrame(record("cam1", seq)); err != nil {
			t.Fatal(err)
		}
	}
	for i, st := range stores {
		if got := st.Count("cam1"); got != 5 {
			t.Errorf("replica %d holds %d frames, want 5", i, got)
		}
	}
}

func TestMultiClientSurvivesSingleOutage(t *testing.T) {
	bus, addrs, stores, cam := replicaRig(t, 2)
	reg := obs.NewRegistry()
	mc, err := NewMultiClient(cam, addrs, MultiClientConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(1); seq <= 3; seq++ {
		if err := mc.StoreFrame(record("cam1", seq)); err != nil {
			t.Fatal(err)
		}
	}

	// Replica 0 dies mid-run.
	bus.Partition(addrs[0])
	for seq := int64(4); seq <= 8; seq++ {
		if err := mc.StoreFrame(record("cam1", seq)); err != nil {
			t.Fatalf("put during outage: %v", err)
		}
	}
	if got := stores[0].Count("cam1"); got != 3 {
		t.Errorf("dead replica holds %d frames, want 3", got)
	}
	// Every frame reached the survivor: no evidence lost.
	if got := stores[1].Count("cam1"); got != 8 {
		t.Errorf("surviving replica holds %d frames, want all 8", got)
	}
	errs := reg.Counter("coralpie_framestore_replica_errors_total", "", "replica", addrs[0])
	if errs.Value() != 5 {
		t.Errorf("dead-replica error counter = %d, want 5", errs.Value())
	}
	ok := reg.Counter("coralpie_framestore_replica_sends_total", "", "replica", addrs[1])
	if ok.Value() != 8 {
		t.Errorf("survivor send counter = %d, want 8", ok.Value())
	}
}

func TestMultiClientQuorumFailure(t *testing.T) {
	bus, addrs, _, cam := replicaRig(t, 2)
	mc, err := NewMultiClient(cam, addrs, MultiClientConfig{
		Quorum:   2,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.StoreFrame(record("cam1", 1)); err != nil {
		t.Fatalf("both replicas up: %v", err)
	}
	bus.Partition(addrs[1])
	if err := mc.StoreFrame(record("cam1", 2)); err == nil {
		t.Fatal("quorum 2 with one dead replica must fail")
	}
}

func TestMultiClientRetriesRetryableErrors(t *testing.T) {
	_, addrs, stores, cam := replicaRig(t, 2)
	// An interceptor that fails each replica's first attempt with a
	// retryable error: the retry middleware must redial within the same
	// StoreFrame call.
	var mu sync.Mutex
	tried := make(map[string]bool)
	flaky := func(ctx context.Context, req *rpc.Request, next rpc.Handler) (*rpc.Response, error) {
		mu.Lock()
		first := !tried[req.Addr]
		tried[req.Addr] = true
		mu.Unlock()
		if first {
			return nil, rpc.MarkRetryable(errors.New("injected"))
		}
		return next(ctx, req)
	}
	reg := obs.NewRegistry()
	mc, err := NewMultiClient(cam, addrs, MultiClientConfig{
		Quorum:       2,
		Registry:     reg,
		Interceptors: []rpc.ClientInterceptor{flaky},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.StoreFrame(record("cam1", 1)); err != nil {
		t.Fatalf("retry did not absorb the injected failures: %v", err)
	}
	for i, st := range stores {
		if got := st.Count("cam1"); got != 1 {
			t.Errorf("replica %d holds %d frames, want 1", i, got)
		}
	}
	for _, addr := range addrs {
		r := reg.Counter("coralpie_framestore_replica_retries_total", "", "replica", addr)
		if r.Value() != 1 {
			t.Errorf("replica %s retries = %d, want 1", addr, r.Value())
		}
	}
}

func TestMultiClientCarriesTrace(t *testing.T) {
	// The in-proc bus injects the ambient span context onto envelopes;
	// replicated sends must deliver it to every replica, so frame writes
	// join the camera's ingest trace.
	bus := transport.NewBus()
	got := make([]*obs.SpanContext, 0, 2)
	for _, addr := range []string{"fs-a", "fs-b"} {
		ep, err := bus.Endpoint(addr)
		if err != nil {
			t.Fatal(err)
		}
		ep.SetHandler(func(ctx context.Context, env protocol.Envelope) {
			if sc, ok := obs.SpanFromContext(ctx); ok {
				got = append(got, &sc)
			} else {
				got = append(got, nil)
			}
		})
	}
	cam, err := bus.Endpoint("cam1")
	if err != nil {
		t.Fatal(err)
	}
	mc, err := NewMultiClient(cam, []string{"fs-a", "fs-b"}, MultiClientConfig{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ctx := obs.ContextWithSpan(context.Background(),
		obs.SpanContext{TraceID: "trace-1", SpanID: "span-1", Sampled: true})
	if err := mc.StoreFrameContext(ctx, record("cam1", 1)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("delivered to %d replicas, want 2", len(got))
	}
	for i, sc := range got {
		if sc == nil || sc.TraceID != "trace-1" {
			t.Errorf("replica %d: trace context %+v, want trace-1", i, sc)
		}
	}
}

func TestMultiClientValidation(t *testing.T) {
	bus := transport.NewBus()
	ep, err := bus.Endpoint("c")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMultiClient(nil, []string{"a"}, MultiClientConfig{}); err == nil {
		t.Error("nil endpoint accepted")
	}
	if _, err := NewMultiClient(ep, nil, MultiClientConfig{}); err == nil {
		t.Error("no addresses accepted")
	}
	if _, err := NewMultiClient(ep, []string{""}, MultiClientConfig{}); err == nil {
		t.Error("empty address accepted")
	}
	if _, err := NewMultiClient(ep, []string{"a"}, MultiClientConfig{Quorum: 2}); err == nil {
		t.Error("quorum above replica count accepted")
	}
	mc, err := NewMultiClient(ep, []string{"a", "b"}, MultiClientConfig{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if got := mc.Replicas(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Replicas() = %v", got)
	}
}
