package framestore

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
)

// Disk layout: each camera owns size-bounded append-only segment files
// "<camera>.<id:08d>.seg" plus a manifest "<camera>.manifest" naming the
// live segments in order. Crash protocol:
//
//   - roll: the manifest (with the new id appended and Next bumped) is
//     persisted BEFORE the segment file is created, so a listed-but-
//     missing segment just means "no records landed yet" and is created
//     empty on open;
//   - GC: the manifest (with the segment removed) is persisted BEFORE
//     the unlink, so an on-disk segment absent from the manifest is a GC
//     leftover and is deleted on open — a GC'd frame can never resurrect
//     as a phantom after a crash.
//
// The pre-segment single-log layout ("<camera>.frames") is migrated on
// open by renaming the log to segment 0 and writing a manifest.

// segSuffix and legacySuffix are the on-disk file extensions.
const (
	segSuffix      = ".seg"
	manifestSuffix = ".manifest"
	legacySuffix   = ".frames"
)

// manifest is the persisted per-camera segment list.
type manifest struct {
	Version  int     `json:"version"`
	Segments []int64 `json:"segments"`
	// Next is the next segment id to allocate; ids below it that are
	// neither listed nor on disk were deleted by GC.
	Next int64 `json:"next"`
}

// recordRef locates one record: its segment and byte offset. The zero
// value is used by the in-memory backend.
type recordRef struct {
	seg *segment
	off int64
}

// segment is one append-only slice of a camera's log. Records are
// immutable once published, so readers serve ReadAt against f while
// holding a refcount; the file handle is closed only when the segment is
// dead (GC'd or store-closed) and the last reader releases it.
type segment struct {
	id   int64
	path string

	// The fields below are guarded by Store.mu, except that w is used by
	// the per-camera append path under cameraLog.wmu (only the writer
	// touches w).
	f      *os.File
	w      *bufio.Writer // non-nil while this is the active segment
	size   int64
	frames int64
	minSeq int64
	maxSeq int64
	newest time.Time // newest record timestamp, drives age retention
	refs   int       // pins by in-flight readers + 1 for the store itself
	dead   bool
}

// acquire pins the segment's file handle for a read. Caller holds
// Store.mu; the returned file stays valid until release.
func (seg *segment) acquire() *os.File {
	seg.refs++
	return seg.f
}

// file returns the pinned handle (caller already acquired).
func (seg *segment) file() *os.File { return seg.f }

// noteRecord folds one published record into the segment's bookkeeping.
// Caller holds Store.mu.
func (seg *segment) noteRecord(seq int64, ts time.Time, n int64) {
	if seg.frames == 0 || seq < seg.minSeq {
		seg.minSeq = seq
	}
	if seg.frames == 0 || seq > seg.maxSeq {
		seg.maxSeq = seq
	}
	if ts.After(seg.newest) {
		seg.newest = ts
	}
	seg.frames++
	seg.size += n
}

// release drops one reader pin, closing the file if the segment is dead
// and this was the last pin.
func (s *Store) release(seg *segment) {
	s.mu.Lock()
	_ = s.releaseLocked(seg)
	s.mu.Unlock()
}

// releaseLocked is release with Store.mu held.
func (s *Store) releaseLocked(seg *segment) error {
	seg.refs--
	if seg.dead && seg.refs <= 0 && seg.f != nil {
		err := seg.f.Close()
		seg.f = nil
		return err
	}
	return nil
}

// cameraLog is one camera's segment chain plus index.
type cameraLog struct {
	camera string

	// wmu serializes appends, rolls, manifest writes, and GC for this
	// camera. Lock order: wmu before Store.mu, never the reverse.
	wmu sync.Mutex

	// The fields below are guarded by Store.mu.
	segs  []*segment // manifest order; last may be active (w != nil)
	index map[int64]recordRef
	seqs  []int64
	next  int64                          // next segment id
	mem   map[int64]protocol.FrameRecord // in-memory backend (segs unused)
}

// active returns the camera's writable segment, nil if none. Caller
// holds Store.mu.
func (cl *cameraLog) active() *segment {
	if n := len(cl.segs); n > 0 && cl.segs[n-1].w != nil {
		return cl.segs[n-1]
	}
	return nil
}

func (cl *cameraLog) manifestPath(dir string) string {
	return filepath.Join(dir, cl.camera+manifestSuffix)
}

func segPath(dir, camera string, id int64) string {
	return filepath.Join(dir, fmt.Sprintf("%s.%08d%s", camera, id, segSuffix))
}

// writeManifest persists the camera's current segment list atomically
// (tmp + rename). Caller holds cl.wmu but NOT Store.mu; it briefly takes
// Store.mu to snapshot the segment ids.
func (s *Store) writeManifest(cl *cameraLog) error {
	s.mu.Lock()
	m := snapshotManifest(cl)
	s.mu.Unlock()
	return s.installManifest(cl, m)
}

// snapshotManifest captures the camera's current segment list. Caller
// holds Store.mu (or runs single-threaded on the open path).
func snapshotManifest(cl *cameraLog) manifest {
	m := manifest{Version: 1, Next: cl.next, Segments: make([]int64, len(cl.segs))}
	for i, seg := range cl.segs {
		m.Segments[i] = seg.id
	}
	return m
}

// installManifest writes one manifest snapshot to disk atomically
// (tmp + rename). Pure IO: takes no locks.
func (s *Store) installManifest(cl *cameraLog, m manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("framestore: marshal manifest: %w", err)
	}
	path := cl.manifestPath(s.dir)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("framestore: write manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("framestore: install manifest: %w", err)
	}
	return nil
}

// rollSegment allocates and opens a fresh active segment. Caller holds
// cl.wmu and the previous active (if any) must already be sealed.
func (s *Store) rollSegment(cl *cameraLog) (*segment, error) {
	s.mu.Lock()
	id := cl.next
	cl.next++
	s.mu.Unlock()

	seg := &segment{id: id, path: segPath(s.dir, cl.camera, id), refs: 1}
	// Manifest first: a crash after this point leaves a listed segment
	// with no file, which open treats as empty (no records are lost —
	// none were written yet).
	s.mu.Lock()
	cl.segs = append(cl.segs, seg)
	s.mu.Unlock()
	if err := s.writeManifest(cl); err != nil {
		s.mu.Lock()
		cl.segs = cl.segs[:len(cl.segs)-1]
		s.mu.Unlock()
		return nil, err
	}
	f, err := os.OpenFile(seg.path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		s.mu.Lock()
		cl.segs = cl.segs[:len(cl.segs)-1]
		s.mu.Unlock()
		return nil, fmt.Errorf("framestore: create segment: %w", err)
	}
	s.mu.Lock()
	seg.f = f
	seg.w = bufio.NewWriter(f)
	s.mu.Unlock()
	return seg, nil
}

// sealActive flushes and seals the camera's active segment, if any.
// Caller holds cl.wmu.
func (s *Store) sealActive(cl *cameraLog) error {
	s.mu.Lock()
	seg := cl.active()
	s.mu.Unlock()
	if seg == nil {
		return nil
	}
	if err := seg.w.Flush(); err != nil {
		return fmt.Errorf("framestore: seal segment: %w", err)
	}
	s.mu.Lock()
	seg.w = nil
	s.mu.Unlock()
	return nil
}

// scanDir discovers and opens every camera found under the store root:
// manifested segment chains, orphaned segment files from an interrupted
// migration, and pre-segment "<camera>.frames" logs (migrated in place).
func (s *Store) scanDir() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("framestore: scan: %w", err)
	}
	cameras := make(map[string]bool)
	orphans := make(map[string][]int64) // camera -> segment ids seen on disk
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		switch {
		case strings.HasSuffix(name, manifestSuffix):
			cameras[strings.TrimSuffix(name, manifestSuffix)] = true
		case strings.HasSuffix(name, legacySuffix):
			cameras[strings.TrimSuffix(name, legacySuffix)] = true
		case strings.HasSuffix(name, segSuffix):
			camera, id, ok := parseSegName(name)
			if !ok {
				continue
			}
			cameras[camera] = true
			orphans[camera] = append(orphans[camera], id)
		}
	}
	names := make([]string, 0, len(cameras))
	for c := range cameras {
		names = append(names, c)
	}
	sort.Strings(names)
	for _, camera := range names {
		cl, err := s.openCamera(camera, orphans[camera])
		if err != nil {
			return err
		}
		s.logs[camera] = cl
	}
	return nil
}

// parseSegName splits "<camera>.<id:08d>.seg"; camera names may contain
// dots, so the id is taken from the right.
func parseSegName(name string) (camera string, id int64, ok bool) {
	base := strings.TrimSuffix(name, segSuffix)
	i := strings.LastIndexByte(base, '.')
	if i <= 0 || i == len(base)-1 {
		return "", 0, false
	}
	id, err := strconv.ParseInt(base[i+1:], 10, 64)
	if err != nil || id < 0 {
		return "", 0, false
	}
	return base[:i], id, true
}

// openCamera loads one camera's segment chain: legacy-log migration,
// manifest load (or reconstruction from on-disk segments), stray-segment
// cleanup, and per-segment indexing with salvage. Single-threaded (open
// path) or called under Store.mu for a brand-new camera.
func (s *Store) openCamera(camera string, diskIDs []int64) (*cameraLog, error) {
	cl := &cameraLog{camera: camera, index: make(map[int64]recordRef)}
	logger := obs.DefaultLogger().WithComponent("framestore")

	// Migrate a pre-segment log: rename it to segment 0 before reading
	// the manifest, so a crash mid-migration (renamed, manifest not yet
	// written) is re-entered as the orphan-adoption path below.
	legacy := filepath.Join(s.dir, camera+legacySuffix)
	if _, err := os.Stat(legacy); err == nil {
		if err := os.Rename(legacy, segPath(s.dir, camera, 0)); err != nil {
			return nil, fmt.Errorf("framestore: migrate legacy log: %w", err)
		}
		diskIDs = append(diskIDs, 0)
		logger.Info("migrated legacy frame log", "camera", camera)
	}

	var m manifest
	data, err := os.ReadFile(cl.manifestPath(s.dir))
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("framestore: manifest %s: %w", camera, err)
		}
	case errors.Is(err, os.ErrNotExist):
		// No manifest: adopt every segment found on disk, oldest first.
		sort.Slice(diskIDs, func(i, j int) bool { return diskIDs[i] < diskIDs[j] })
		m = manifest{Version: 1, Segments: diskIDs}
	default:
		return nil, fmt.Errorf("framestore: manifest %s: %w", camera, err)
	}
	m.Next = maxInt64(m.Next, maxID(m.Segments)+1)
	cl.next = m.Next

	// Stray segments (on disk, not in the manifest) are GC leftovers:
	// the manifest dropped them before the unlink, the unlink did not
	// land. Finish the job instead of resurrecting phantom frames.
	listed := make(map[int64]bool, len(m.Segments))
	for _, id := range m.Segments {
		listed[id] = true
	}
	for _, id := range diskIDs {
		if listed[id] {
			continue
		}
		if err := os.Remove(segPath(s.dir, camera, id)); err != nil {
			return nil, fmt.Errorf("framestore: remove stray segment: %w", err)
		}
		s.reload.StraySegments++
		logger.Warn("deleted stray segment left by an interrupted gc",
			"camera", camera, "segment", fmt.Sprint(id))
	}

	for _, id := range m.Segments {
		seg, err := s.indexSegment(cl, id)
		if err != nil {
			return nil, err
		}
		cl.segs = append(cl.segs, seg)
		s.reload.Segments++
	}
	sort.Slice(cl.seqs, func(i, j int) bool { return cl.seqs[i] < cl.seqs[j] })

	// Reopen the newest segment for appending (it may be mid-fill).
	if n := len(cl.segs); n > 0 {
		seg := cl.segs[n-1]
		if _, err := seg.f.Seek(seg.size, io.SeekStart); err != nil {
			return nil, fmt.Errorf("framestore: seek %s: %w", seg.path, err)
		}
		seg.w = bufio.NewWriter(seg.f)
	}
	// openCamera runs single-threaded (open path) or under Store.mu (a
	// new camera's first frame), so it snapshots the manifest inline
	// instead of going through writeManifest's locking.
	if err := s.installManifest(cl, snapshotManifest(cl)); err != nil {
		return nil, err
	}
	return cl, nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxID(ids []int64) int64 {
	var m int64 = -1
	for _, id := range ids {
		if id > m {
			m = id
		}
	}
	return m
}

// indexSegment opens and indexes one segment file, salvaging what it
// can: a record whose framing is intact but whose payload fails to
// decode is skipped and scanning continues; only an unparsable tail — a
// short read or an impossible length prefix, the signature of a torn
// write — truncates the remainder, logged and counted like the
// trajstore WAL's tail handling. Duplicate (camera, seq) records keep
// their first occurrence only, so a crash-replayed append can no longer
// overcount Count or double-return from Range.
func (s *Store) indexSegment(cl *cameraLog, id int64) (*segment, error) {
	path := segPath(s.dir, cl.camera, id)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("framestore: open %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("framestore: stat %s: %w", path, err)
	}
	fileSize := info.Size()
	seg := &segment{id: id, path: path, f: f, refs: 1}
	logger := obs.DefaultLogger().WithComponent("framestore")

	var offset int64
	r := bufio.NewReader(f)
	truncate := func(reason string) error {
		lost := fileSize - offset
		s.reload.TornTails++
		s.reload.TruncatedBytes += lost
		logger.Warn("truncated unreadable segment tail",
			"camera", cl.camera, "segment", fmt.Sprint(id),
			"reason", reason, "offset", fmt.Sprint(offset),
			"truncatedBytes", fmt.Sprint(lost))
		if err := f.Truncate(offset); err != nil {
			return fmt.Errorf("framestore: truncate %s: %w", path, err)
		}
		return nil
	}
scan:
	for offset < fileSize {
		var lenBuf [4]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			if err := truncate("torn length prefix"); err != nil {
				return nil, err
			}
			break
		}
		n := int64(binary.BigEndian.Uint32(lenBuf[:]))
		if n > maxRecordBytes {
			// An impossible length gives no resync point: everything from
			// here on is unreadable.
			if err := truncate("corrupt length prefix"); err != nil {
				return nil, err
			}
			break
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			if err := truncate("torn record payload"); err != nil {
				return nil, err
			}
			break
		}
		var rec protocol.FrameRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			// Framing intact, payload rotten: skip this record and keep
			// salvaging — the length prefix still walks the file.
			s.reload.CorruptRecords++
			logger.Warn("skipped undecodable record",
				"camera", cl.camera, "segment", fmt.Sprint(id),
				"offset", fmt.Sprint(offset))
			offset += 4 + n
			continue scan
		}
		if _, dup := cl.index[rec.Seq]; dup {
			s.reload.DuplicateRecords++
			offset += 4 + n
			continue scan
		}
		cl.index[rec.Seq] = recordRef{seg: seg, off: offset}
		cl.seqs = append(cl.seqs, rec.Seq)
		seg.noteRecord(rec.Seq, rec.Timestamp, 4+n)
		s.reload.Frames++
		offset += 4 + n
	}
	// Corrupt-but-framed records occupy bytes without being indexed;
	// size must cover them so appends land after, not over, them.
	seg.size = offset
	s.disk += offset
	return seg, nil
}

func readRecordAt(f *os.File, offset int64) (protocol.FrameRecord, error) {
	if f == nil {
		return protocol.FrameRecord{}, ErrClosed
	}
	var lenBuf [4]byte
	if _, err := f.ReadAt(lenBuf[:], offset); err != nil {
		return protocol.FrameRecord{}, fmt.Errorf("framestore: read: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxRecordBytes {
		return protocol.FrameRecord{}, fmt.Errorf("framestore: corrupt record length %d", n)
	}
	data := make([]byte, n)
	if _, err := f.ReadAt(data, offset+4); err != nil {
		return protocol.FrameRecord{}, fmt.Errorf("framestore: read: %w", err)
	}
	var rec protocol.FrameRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return protocol.FrameRecord{}, fmt.Errorf("framestore: decode: %w", err)
	}
	return rec, nil
}
