// Package framestore implements Coral-Pie's frame storage (paper Section
// 4.2.2): an edge-node service that persists raw video frames plus their
// tracking annotations so users can verify and visualize trajectories.
// Frames arrive as fire-and-forget FrameRecord messages (the paper uses
// non-blocking ZeroMQ; here the transport layer plays that role).
//
// The disk engine stores each camera's frames in size-bounded append-only
// segments tracked by a per-camera manifest (segment.go). Records are
// immutable once written, so reads are served by positional ReadAt
// against a ref-counted segment handle with only a short index lookup
// under the store lock — readers never wait behind a writer's disk flush.
// A small read-through LRU cache (cache.go) absorbs repeated fetches of
// hot frames, and time/size-based retention GC (gc.go) reclaims whole
// sealed segments so evidence storage stays resource-bounded. Replicated
// delivery to several framestore servers is the client's job
// (MultiClient in client.go).
package framestore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// Errors returned by the store.
var (
	ErrNotFound = errors.New("framestore: frame not found")
	ErrClosed   = errors.New("framestore: store closed")
)

// maxRecordBytes bounds one stored frame record.
const maxRecordBytes = 32 << 20

// DefaultSegmentBytes is the roll threshold when Config.SegmentBytes is
// zero: large enough that small deployments keep one segment per camera,
// small enough that retention GC has whole segments to reclaim.
const DefaultSegmentBytes = 64 << 20

// Config tunes a store. The zero value keeps frames forever in
// DefaultSegmentBytes segments with the read cache disabled, matching
// the behavior of the original single-log engine.
type Config struct {
	// SegmentBytes is the per-camera segment roll threshold; a segment
	// that reaches it is sealed and a fresh one started. 0 uses
	// DefaultSegmentBytes.
	SegmentBytes int64
	// RetainAge drops sealed segments whose newest record is older than
	// this (by record timestamp, against Clock). 0 keeps frames forever.
	RetainAge time.Duration
	// RetainBytes bounds the store's total on-disk bytes: when exceeded,
	// GC deletes the globally oldest sealed segments until under the
	// bound. The active segment is never deleted, so the effective bound
	// is max(RetainBytes, largest active segment). 0 is unbounded.
	RetainBytes int64
	// CacheFrames is the capacity (in records) of the read-through LRU
	// frame cache. 0 disables the cache.
	CacheFrames int
	// Clock supplies "now" for retention cutoffs and flush-latency
	// timestamps (inject the DES virtual clock in simulations). Nil uses
	// the real clock.
	Clock clock.Clock
}

func (c Config) withDefaults() Config {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = DefaultSegmentBytes
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
	return c
}

// retentionEnabled reports whether GC has anything to enforce.
func (c Config) retentionEnabled() bool {
	return c.RetainAge > 0 || c.RetainBytes > 0
}

// storeMetrics are the store's pre-resolved telemetry handles.
type storeMetrics struct {
	frames      *obs.Counter
	dupes       *obs.Counter
	writeErrs   *obs.Counter
	bytes       *obs.Counter
	flushHist   *obs.Histogram
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	gcRuns      *obs.Counter
	gcSegments  *obs.Counter
	gcFrames    *obs.Counter
	gcBytes     *obs.Counter
	diskBytes   *obs.Gauge
}

func newStoreMetrics(reg *obs.Registry) storeMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	return storeMetrics{
		frames: reg.Counter("coralpie_framestore_frames_total",
			"frame records stored"),
		dupes: reg.Counter("coralpie_framestore_duplicates_total",
			"re-stores of an existing (camera, seq) ignored"),
		writeErrs: reg.Counter("coralpie_framestore_write_errors_total",
			"rejected or failed frame writes"),
		bytes: reg.Counter("coralpie_framestore_bytes_total",
			"encoded frame-record bytes accepted (disk- and memory-backed alike)"),
		flushHist: reg.Histogram("coralpie_framestore_flush_seconds",
			"per-frame append+flush latency", nil),
		cacheHits: reg.Counter("coralpie_framestore_cache_hits_total",
			"frame reads served from the read-through cache"),
		cacheMisses: reg.Counter("coralpie_framestore_cache_misses_total",
			"frame reads that went to disk"),
		gcRuns: reg.Counter("coralpie_framestore_gc_runs_total",
			"retention GC passes"),
		gcSegments: reg.Counter("coralpie_framestore_gc_segments_total",
			"whole segments deleted by retention GC"),
		gcFrames: reg.Counter("coralpie_framestore_gc_frames_total",
			"frame records dropped by retention GC"),
		gcBytes: reg.Counter("coralpie_framestore_gc_reclaimed_bytes_total",
			"on-disk bytes reclaimed by retention GC"),
		diskBytes: reg.Gauge("coralpie_framestore_disk_bytes",
			"current on-disk bytes across all segments"),
	}
}

// ReloadStats summarizes what OpenStore found while re-indexing existing
// segments — the crash-recovery ledger, mirroring trajstore's WALStats.
type ReloadStats struct {
	// Segments and Frames indexed across all cameras.
	Segments int64
	Frames   int64
	// DuplicateRecords counts on-disk records skipped because an earlier
	// record already claimed their (camera, seq) — e.g. a crash replayed
	// an append. The first occurrence wins, matching Put semantics.
	DuplicateRecords int64
	// CorruptRecords counts mid-file records whose framing was intact
	// but whose payload failed to decode; they are skipped and the valid
	// records after them salvaged.
	CorruptRecords int64
	// TornTails counts segments whose unparsable tail was truncated
	// away; TruncatedBytes is the total discarded.
	TornTails      int64
	TruncatedBytes int64
	// StraySegments counts unlisted segment files deleted at open (a
	// crash between a GC manifest write and its unlink).
	StraySegments int64
}

// GCStats summarizes one retention pass.
type GCStats struct {
	Segments int64 // whole segments deleted
	Frames   int64 // records dropped with them
	Bytes    int64 // on-disk bytes reclaimed
}

// Store holds frame records for a set of cameras. Safe for concurrent
// use: the store mutex guards only in-memory index state, appends are
// serialized per camera, and disk reads run outside every lock.
type Store struct {
	dir string // "" for in-memory
	cfg Config

	mu     sync.Mutex
	logs   map[string]*cameraLog
	closed bool
	m      storeMetrics
	clk    clock.Clock
	tracer *obs.Tracer
	cache  *frameCache // nil when disabled
	reload ReloadStats
	disk   int64 // total on-disk bytes across all segments
	gcSeq  int64 // GC run counter, names gc spans
}

// Instrument re-homes the store's telemetry (coralpie_framestore_*) onto
// reg and uses clk for flush-latency and retention timestamps (inject
// the DES virtual clock in simulations; nil keeps the current clock).
// Call before traffic flows.
func (s *Store) Instrument(reg *obs.Registry, clk clock.Clock) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = newStoreMetrics(reg)
	s.m.diskBytes.Set(s.disk)
	if clk != nil {
		s.clk = clk
	}
}

// UseTracer records a "gc" span for every retention pass on t. Call
// before traffic flows; nil disables.
func (s *Store) UseTracer(t *obs.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = t
}

// OpenStore opens (or creates) a store rooted at dir with default
// tuning; pass "" for a purely in-memory store.
func OpenStore(dir string) (*Store, error) {
	return OpenStoreConfig(dir, Config{})
}

// OpenStoreConfig opens (or creates) a store rooted at dir with explicit
// tuning. Existing segments are re-indexed; damaged tails are truncated
// and logged, duplicate records deduplicated, and decodable records
// after a corrupt one salvaged (see ReloadStats).
func OpenStoreConfig(dir string, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	s := &Store{
		dir:  dir,
		cfg:  cfg,
		logs: make(map[string]*cameraLog),
		m:    newStoreMetrics(nil),
		clk:  cfg.Clock,
	}
	if cfg.CacheFrames > 0 {
		s.cache = newFrameCache(cfg.CacheFrames)
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("framestore: mkdir: %w", err)
	}
	if err := s.scanDir(); err != nil {
		return nil, err
	}
	s.m.diskBytes.Set(s.disk)
	if s.reload != (ReloadStats{}) {
		obs.DefaultLogger().WithComponent("framestore").Info("reopened store",
			"dir", dir,
			"segments", fmt.Sprint(s.reload.Segments),
			"frames", fmt.Sprint(s.reload.Frames),
			"duplicates", fmt.Sprint(s.reload.DuplicateRecords),
			"corruptRecords", fmt.Sprint(s.reload.CorruptRecords),
			"tornTails", fmt.Sprint(s.reload.TornTails),
			"truncatedBytes", fmt.Sprint(s.reload.TruncatedBytes),
			"straySegments", fmt.Sprint(s.reload.StraySegments))
	}
	return s, nil
}

// ReloadStats returns what the opening scan found (zero-valued for
// in-memory and freshly created stores).
func (s *Store) ReloadStats() ReloadStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reload
}

// DiskBytes returns the store's current total on-disk bytes.
func (s *Store) DiskBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.disk
}

// logFor returns (creating if needed) the camera's log. Caller holds
// s.mu.
func (s *Store) logFor(camera string) (*cameraLog, error) {
	if cl, ok := s.logs[camera]; ok {
		return cl, nil
	}
	if s.dir == "" {
		cl := &cameraLog{
			camera: camera,
			index:  make(map[int64]recordRef),
			mem:    make(map[int64]protocol.FrameRecord),
		}
		s.logs[camera] = cl
		return cl, nil
	}
	cl, err := s.openCamera(camera, nil)
	if err != nil {
		return nil, err
	}
	s.logs[camera] = cl
	return cl, nil
}

// validate rejects structurally broken records before any lock is taken.
func validate(rec *protocol.FrameRecord) error {
	if rec.CameraID == "" {
		return errors.New("framestore: record missing camera id")
	}
	if rec.Width <= 0 || rec.Height <= 0 || len(rec.Pixels) != rec.Width*rec.Height*3 {
		return fmt.Errorf("framestore: record %s/%d has inconsistent dimensions", rec.CameraID, rec.Seq)
	}
	return nil
}

// Put stores one frame record. Re-storing an existing (camera, seq) is
// ignored (frames are immutable).
func (s *Store) Put(rec protocol.FrameRecord) error {
	if err := validate(&rec); err != nil {
		s.countWriteErr()
		return err
	}
	// Encode outside every lock: both backends charge the same encoded
	// size to coralpie_framestore_bytes_total, so disk- and memory-backed
	// stores report identical telemetry for identical traffic.
	data, err := json.Marshal(rec)
	if err != nil {
		s.countWriteErr()
		return fmt.Errorf("framestore: marshal: %w", err)
	}
	if len(data) > maxRecordBytes {
		s.countWriteErr()
		return fmt.Errorf("framestore: record too large: %d bytes", len(data))
	}

	s.mu.Lock()
	if s.closed {
		s.m.writeErrs.Inc()
		s.mu.Unlock()
		return ErrClosed
	}
	m := s.m
	cl, err := s.logFor(rec.CameraID)
	if err != nil {
		s.m.writeErrs.Inc()
		s.mu.Unlock()
		return err
	}
	if cl.mem != nil {
		// In-memory backend: everything under the store lock, writes are
		// a map insert.
		if _, ok := cl.index[rec.Seq]; ok {
			m.dupes.Inc()
			s.mu.Unlock()
			return nil
		}
		cl.mem[rec.Seq] = rec
		cl.index[rec.Seq] = recordRef{}
		cl.seqs = insertSorted(cl.seqs, rec.Seq)
		m.frames.Inc()
		m.bytes.Add(int64(4 + len(data)))
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	full, aged, err := s.putDisk(cl, rec, data, m)
	if err != nil {
		return err
	}
	if full && s.cfg.retentionEnabled() {
		// Size retention runs after the camera write lock is released —
		// it takes other cameras' write locks one at a time, and two
		// cameras rolling concurrently must not hold theirs while
		// waiting on each other's.
		sized, err := s.gcBySize()
		if err != nil {
			obs.DefaultLogger().WithComponent("framestore").Warn("retention gc",
				"camera", cl.camera, "err", err.Error())
		}
		s.recordGC(aged.plus(sized))
	}
	return nil
}

// putDisk appends one encoded record to the camera's active segment,
// rolling (and age-GC-ing the camera) when full. Appends serialize per
// camera on cl.wmu; the store lock is retaken only for the duplicate
// check and the index publish, so concurrent readers never wait behind
// this flush.
func (s *Store) putDisk(cl *cameraLog, rec protocol.FrameRecord, data []byte, m storeMetrics) (full bool, aged GCStats, err error) {
	cl.wmu.Lock()
	defer cl.wmu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.m.writeErrs.Inc()
		s.mu.Unlock()
		return false, aged, ErrClosed
	}
	if _, ok := cl.index[rec.Seq]; ok {
		s.m.dupes.Inc()
		s.mu.Unlock()
		return false, aged, nil
	}
	seg := cl.active()
	s.mu.Unlock()

	if seg == nil {
		if seg, err = s.rollSegment(cl); err != nil {
			s.countWriteErr()
			return false, aged, err
		}
	}

	start := s.now()
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(data)))
	if _, err := seg.w.Write(lenBuf[:]); err != nil {
		s.countWriteErr()
		return false, aged, fmt.Errorf("framestore: append: %w", err)
	}
	if _, err := seg.w.Write(data); err != nil {
		s.countWriteErr()
		return false, aged, fmt.Errorf("framestore: append: %w", err)
	}
	if err := seg.w.Flush(); err != nil {
		s.countWriteErr()
		return false, aged, fmt.Errorf("framestore: flush: %w", err)
	}
	m.flushHist.Observe(s.now().Sub(start).Seconds())

	// Publish: from here on readers can see the record via ReadAt — the
	// bytes are in the file (flushed above), and the segment handle is
	// pinned by refcount against concurrent GC.
	n := int64(4 + len(data))
	s.mu.Lock()
	cl.index[rec.Seq] = recordRef{seg: seg, off: seg.size}
	cl.seqs = insertSorted(cl.seqs, rec.Seq)
	seg.noteRecord(rec.Seq, rec.Timestamp, n)
	s.disk += n
	m.diskBytes.Set(s.disk)
	full = seg.size >= s.cfg.SegmentBytes
	s.mu.Unlock()
	m.frames.Inc()
	m.bytes.Add(n)

	if full {
		if err := s.sealActive(cl); err != nil {
			return true, aged, err
		}
		if s.cfg.RetainAge > 0 {
			if aged, err = s.gcCamera(cl); err != nil {
				obs.DefaultLogger().WithComponent("framestore").Warn("retention gc",
					"camera", cl.camera, "err", err.Error())
				err = nil
			}
		}
	}
	return full, aged, nil
}

// countWriteErr increments the write-error counter for validation
// failures hit before the store lock is taken.
func (s *Store) countWriteErr() {
	s.mu.Lock()
	s.m.writeErrs.Inc()
	s.mu.Unlock()
}

// cacheHandle returns the read cache (nil when disabled). Caller holds
// s.mu.
func (s *Store) cacheHandle() *frameCache { return s.cache }

func (s *Store) now() time.Time {
	s.mu.Lock()
	clk := s.clk
	s.mu.Unlock()
	return clk.Now()
}

func insertSorted(seqs []int64, v int64) []int64 {
	i := sort.Search(len(seqs), func(i int) bool { return seqs[i] >= v })
	seqs = append(seqs, 0)
	copy(seqs[i+1:], seqs[i:])
	seqs[i] = v
	return seqs
}

// Get fetches one frame record. Disk reads happen outside the store
// lock: the segment handle is pinned by refcount, so a concurrent
// writer's flush or a GC pass never blocks (or invalidates) this read.
func (s *Store) Get(camera string, seq int64) (protocol.FrameRecord, error) {
	s.mu.Lock()
	cl, ok := s.logs[camera]
	if !ok {
		s.mu.Unlock()
		return protocol.FrameRecord{}, fmt.Errorf("%w: camera %q", ErrNotFound, camera)
	}
	ref, ok := cl.index[seq]
	if !ok {
		s.mu.Unlock()
		return protocol.FrameRecord{}, fmt.Errorf("%w: %s/%d", ErrNotFound, camera, seq)
	}
	if cl.mem != nil {
		rec := cl.mem[seq]
		s.mu.Unlock()
		return rec, nil
	}
	m := s.m
	cache := s.cacheHandle()
	f := ref.seg.acquire()
	s.mu.Unlock()

	if cache != nil {
		if rec, ok := cache.get(camera, seq); ok {
			m.cacheHits.Inc()
			s.release(ref.seg)
			return rec, nil
		}
		m.cacheMisses.Inc()
	}
	rec, err := readRecordAt(f, ref.off)
	s.release(ref.seg)
	if err != nil {
		return protocol.FrameRecord{}, err
	}
	if cache != nil {
		cache.add(camera, seq, rec)
	}
	return rec, nil
}

// Range returns the stored records for camera with fromSeq <= seq <=
// toSeq, in sequence order. Like Get, disk reads run outside the store
// lock against an index snapshot taken under it.
func (s *Store) Range(camera string, fromSeq, toSeq int64) ([]protocol.FrameRecord, error) {
	type fetch struct {
		seq int64
		ref recordRef
	}
	s.mu.Lock()
	cl, ok := s.logs[camera]
	if !ok {
		s.mu.Unlock()
		return nil, nil
	}
	if cl.mem != nil {
		var out []protocol.FrameRecord
		start := sort.Search(len(cl.seqs), func(i int) bool { return cl.seqs[i] >= fromSeq })
		for _, seq := range cl.seqs[start:] {
			if seq > toSeq {
				break
			}
			out = append(out, cl.mem[seq])
		}
		s.mu.Unlock()
		return out, nil
	}
	var fetches []fetch
	pinned := make(map[*segment]bool)
	start := sort.Search(len(cl.seqs), func(i int) bool { return cl.seqs[i] >= fromSeq })
	for _, seq := range cl.seqs[start:] {
		if seq > toSeq {
			break
		}
		ref := cl.index[seq]
		if !pinned[ref.seg] {
			ref.seg.acquire()
			pinned[ref.seg] = true
		}
		fetches = append(fetches, fetch{seq: seq, ref: ref})
	}
	m := s.m
	cache := s.cacheHandle()
	s.mu.Unlock()

	releaseAll := func() {
		for seg := range pinned {
			s.release(seg)
		}
	}
	var out []protocol.FrameRecord
	for _, fch := range fetches {
		if cache != nil {
			if rec, ok := cache.get(camera, fch.seq); ok {
				m.cacheHits.Inc()
				out = append(out, rec)
				continue
			}
			m.cacheMisses.Inc()
		}
		rec, err := readRecordAt(fch.ref.seg.file(), fch.ref.off)
		if err != nil {
			releaseAll()
			return nil, err
		}
		if cache != nil {
			cache.add(camera, fch.seq, rec)
		}
		out = append(out, rec)
	}
	releaseAll()
	return out, nil
}

// Count returns how many frames are stored for a camera.
func (s *Store) Count(camera string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cl, ok := s.logs[camera]; ok {
		return len(cl.seqs)
	}
	return 0
}

// Cameras lists the cameras with stored frames, sorted.
func (s *Store) Cameras() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.logs))
	for c := range s.logs {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Close flushes and closes every segment. In-flight reads holding a
// pinned segment finish against the already-open handle; new operations
// fail with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	logs := make([]*cameraLog, 0, len(s.logs))
	for _, cl := range s.logs {
		logs = append(logs, cl)
	}
	s.mu.Unlock()

	var firstErr error
	for _, cl := range logs {
		if cl.mem != nil {
			continue
		}
		cl.wmu.Lock()
		s.mu.Lock()
		for _, seg := range cl.segs {
			if seg.w != nil {
				if err := seg.w.Flush(); err != nil && firstErr == nil {
					firstErr = err
				}
				seg.w = nil
			}
			seg.dead = true
			if err := s.releaseLocked(seg); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		s.mu.Unlock()
		cl.wmu.Unlock()
	}
	return firstErr
}
