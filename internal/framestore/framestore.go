// Package framestore implements Coral-Pie's frame storage (paper Section
// 4.2.2): an edge-node service that persists raw video frames plus their
// tracking annotations so users can verify and visualize trajectories.
// Frames arrive as fire-and-forget FrameRecord messages (the paper uses
// non-blocking ZeroMQ; here the transport layer plays that role), and are
// stored in per-camera append-only logs with an in-memory offset index.
package framestore

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// Errors returned by the store.
var (
	ErrNotFound = errors.New("framestore: frame not found")
	ErrClosed   = errors.New("framestore: store closed")
)

// maxRecordBytes bounds one stored frame record.
const maxRecordBytes = 32 << 20

// cameraLog is the per-camera persistent log plus index.
type cameraLog struct {
	file    *os.File // nil for in-memory stores
	writer  *bufio.Writer
	size    int64
	offsets map[int64]int64 // seq -> byte offset
	seqs    []int64         // sorted sequence numbers
	mem     map[int64]protocol.FrameRecord
}

// storeMetrics are the store's pre-resolved telemetry handles.
type storeMetrics struct {
	frames    *obs.Counter
	dupes     *obs.Counter
	writeErrs *obs.Counter
	bytes     *obs.Counter
	flushHist *obs.Histogram
}

func newStoreMetrics(reg *obs.Registry) storeMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	return storeMetrics{
		frames: reg.Counter("coralpie_framestore_frames_total",
			"frame records stored"),
		dupes: reg.Counter("coralpie_framestore_duplicates_total",
			"re-stores of an existing (camera, seq) ignored"),
		writeErrs: reg.Counter("coralpie_framestore_write_errors_total",
			"rejected or failed frame writes"),
		bytes: reg.Counter("coralpie_framestore_bytes_total",
			"encoded frame-record bytes appended to logs"),
		flushHist: reg.Histogram("coralpie_framestore_flush_seconds",
			"per-frame append+flush latency", nil),
	}
}

// Store holds frame records for a set of cameras. Safe for concurrent
// use.
type Store struct {
	dir string // "" for in-memory

	mu     sync.Mutex
	logs   map[string]*cameraLog
	closed bool
	m      storeMetrics
	clk    clock.Clock
}

// Instrument re-homes the store's telemetry (coralpie_framestore_*) onto
// reg and uses clk for flush-latency timestamps (inject the DES virtual
// clock in simulations; nil keeps the current clock). Call before
// traffic flows.
func (s *Store) Instrument(reg *obs.Registry, clk clock.Clock) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = newStoreMetrics(reg)
	if clk != nil {
		s.clk = clk
	}
}

// OpenStore opens (or creates) a store rooted at dir; pass "" for a
// purely in-memory store.
func OpenStore(dir string) (*Store, error) {
	s := &Store{
		dir:  dir,
		logs: make(map[string]*cameraLog),
		m:    newStoreMetrics(nil),
		clk:  clock.Real{},
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("framestore: mkdir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("framestore: scan: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".frames") {
			continue
		}
		camera := strings.TrimSuffix(name, ".frames")
		if err := s.openLog(camera); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// openLog opens and indexes one camera's log file. Caller may hold s.mu
// or be in single-threaded setup.
func (s *Store) openLog(camera string) error {
	path := filepath.Join(s.dir, camera+".frames")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("framestore: open %s: %w", path, err)
	}
	cl := &cameraLog{
		file:    f,
		offsets: make(map[int64]int64),
	}
	// Index existing records.
	var offset int64
	r := bufio.NewReader(f)
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			break // EOF or torn tail: stop indexing
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n > maxRecordBytes {
			break
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			break
		}
		var rec protocol.FrameRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			break
		}
		cl.offsets[rec.Seq] = offset
		cl.seqs = append(cl.seqs, rec.Seq)
		offset += int64(4 + n)
	}
	sort.Slice(cl.seqs, func(i, j int) bool { return cl.seqs[i] < cl.seqs[j] })
	cl.size = offset
	if err := f.Truncate(offset); err != nil { // drop any torn tail
		_ = f.Close()
		return fmt.Errorf("framestore: truncate %s: %w", path, err)
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		_ = f.Close()
		return fmt.Errorf("framestore: seek %s: %w", path, err)
	}
	cl.writer = bufio.NewWriter(f)
	s.logs[camera] = cl
	return nil
}

func (s *Store) logFor(camera string) (*cameraLog, error) {
	if cl, ok := s.logs[camera]; ok {
		return cl, nil
	}
	if s.dir == "" {
		cl := &cameraLog{
			offsets: make(map[int64]int64),
			mem:     make(map[int64]protocol.FrameRecord),
		}
		s.logs[camera] = cl
		return cl, nil
	}
	if err := s.openLog(camera); err != nil {
		return nil, err
	}
	return s.logs[camera], nil
}

// Put stores one frame record. Re-storing an existing (camera, seq) is
// ignored (frames are immutable).
func (s *Store) Put(rec protocol.FrameRecord) error {
	if rec.CameraID == "" {
		s.countWriteErr()
		return errors.New("framestore: record missing camera id")
	}
	if rec.Width <= 0 || rec.Height <= 0 || len(rec.Pixels) != rec.Width*rec.Height*3 {
		s.countWriteErr()
		return fmt.Errorf("framestore: record %s/%d has inconsistent dimensions", rec.CameraID, rec.Seq)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.m.writeErrs.Inc()
		return ErrClosed
	}
	cl, err := s.logFor(rec.CameraID)
	if err != nil {
		s.m.writeErrs.Inc()
		return err
	}
	if _, ok := cl.offsets[rec.Seq]; ok {
		s.m.dupes.Inc()
		return nil
	}
	if cl.mem != nil {
		cl.mem[rec.Seq] = rec
		cl.offsets[rec.Seq] = 0
		cl.seqs = insertSorted(cl.seqs, rec.Seq)
		s.m.frames.Inc()
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		s.m.writeErrs.Inc()
		return fmt.Errorf("framestore: marshal: %w", err)
	}
	if len(data) > maxRecordBytes {
		s.m.writeErrs.Inc()
		return fmt.Errorf("framestore: record too large: %d bytes", len(data))
	}
	start := s.clk.Now()
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(data)))
	if _, err := cl.writer.Write(lenBuf[:]); err != nil {
		s.m.writeErrs.Inc()
		return fmt.Errorf("framestore: append: %w", err)
	}
	if _, err := cl.writer.Write(data); err != nil {
		s.m.writeErrs.Inc()
		return fmt.Errorf("framestore: append: %w", err)
	}
	if err := cl.writer.Flush(); err != nil {
		s.m.writeErrs.Inc()
		return fmt.Errorf("framestore: flush: %w", err)
	}
	s.m.flushHist.Observe(s.clk.Now().Sub(start).Seconds())
	cl.offsets[rec.Seq] = cl.size
	cl.seqs = insertSorted(cl.seqs, rec.Seq)
	cl.size += int64(4 + len(data))
	s.m.frames.Inc()
	s.m.bytes.Add(int64(4 + len(data)))
	return nil
}

// countWriteErr increments the write-error counter for validation
// failures hit before the store lock is taken.
func (s *Store) countWriteErr() {
	s.mu.Lock()
	s.m.writeErrs.Inc()
	s.mu.Unlock()
}

func insertSorted(seqs []int64, v int64) []int64 {
	i := sort.Search(len(seqs), func(i int) bool { return seqs[i] >= v })
	seqs = append(seqs, 0)
	copy(seqs[i+1:], seqs[i:])
	seqs[i] = v
	return seqs
}

// Get fetches one frame record.
func (s *Store) Get(camera string, seq int64) (protocol.FrameRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cl, ok := s.logs[camera]
	if !ok {
		return protocol.FrameRecord{}, fmt.Errorf("%w: camera %q", ErrNotFound, camera)
	}
	offset, ok := cl.offsets[seq]
	if !ok {
		return protocol.FrameRecord{}, fmt.Errorf("%w: %s/%d", ErrNotFound, camera, seq)
	}
	if cl.mem != nil {
		return cl.mem[seq], nil
	}
	return readRecordAt(cl.file, offset)
}

func readRecordAt(f *os.File, offset int64) (protocol.FrameRecord, error) {
	var lenBuf [4]byte
	if _, err := f.ReadAt(lenBuf[:], offset); err != nil {
		return protocol.FrameRecord{}, fmt.Errorf("framestore: read: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxRecordBytes {
		return protocol.FrameRecord{}, fmt.Errorf("framestore: corrupt record length %d", n)
	}
	data := make([]byte, n)
	if _, err := f.ReadAt(data, offset+4); err != nil {
		return protocol.FrameRecord{}, fmt.Errorf("framestore: read: %w", err)
	}
	var rec protocol.FrameRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return protocol.FrameRecord{}, fmt.Errorf("framestore: decode: %w", err)
	}
	return rec, nil
}

// Range returns the stored records for camera with fromSeq <= seq <=
// toSeq, in sequence order.
func (s *Store) Range(camera string, fromSeq, toSeq int64) ([]protocol.FrameRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cl, ok := s.logs[camera]
	if !ok {
		return nil, nil
	}
	var out []protocol.FrameRecord
	start := sort.Search(len(cl.seqs), func(i int) bool { return cl.seqs[i] >= fromSeq })
	for _, seq := range cl.seqs[start:] {
		if seq > toSeq {
			break
		}
		if cl.mem != nil {
			out = append(out, cl.mem[seq])
			continue
		}
		rec, err := readRecordAt(cl.file, cl.offsets[seq])
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// Count returns how many frames are stored for a camera.
func (s *Store) Count(camera string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cl, ok := s.logs[camera]; ok {
		return len(cl.seqs)
	}
	return 0
}

// Cameras lists the cameras with stored frames, sorted.
func (s *Store) Cameras() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.logs))
	for c := range s.logs {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Close flushes and closes every log file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	for _, cl := range s.logs {
		if cl.file == nil {
			continue
		}
		if err := cl.writer.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := cl.file.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Server receives FrameRecord envelopes from cameras and stores them.
type Server struct {
	store *Store
	ep    transport.Endpoint

	mu       sync.Mutex
	received int64
	errors   int64
	closed   bool
	drainObs uint64

	inflight sync.WaitGroup
	drain    *obs.Histogram
	clk      clock.Clock
}

// NewServer installs the handler on ep and returns the server.
func NewServer(store *Store, ep transport.Endpoint) (*Server, error) {
	if store == nil || ep == nil {
		return nil, errors.New("framestore: store and endpoint required")
	}
	s := &Server{store: store, ep: ep, drain: new(obs.Histogram), clk: clock.Real{}}
	ep.SetHandler(s.handle)
	return s, nil
}

// Use re-homes the server's shutdown telemetry
// (coralpie_framestore_shutdown_drain_seconds) onto reg and times the
// drain with clk (nil keeps the current clock). Call before Shutdown.
func (s *Server) Use(reg *obs.Registry, clk clock.Clock) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if reg != nil {
		s.drain = reg.Histogram("coralpie_framestore_shutdown_drain_seconds",
			"graceful-shutdown drain duration", nil)
	}
	if clk != nil {
		s.clk = clk
	}
}

func (s *Server) handle(ctx context.Context, env protocol.Envelope) {
	s.mu.Lock()
	if s.closed {
		// Intake is stopped: frames arriving mid-shutdown are dropped
		// silently, same as a fire-and-forget datagram to a gone peer.
		s.mu.Unlock()
		return
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()

	if ctx.Err() != nil {
		// The endpoint is shutting down; drop rather than write to a
		// store that may already be flushing its logs closed.
		s.count(false)
		return
	}
	msg, err := protocol.Open(env)
	if err != nil {
		s.count(false)
		return
	}
	rec, ok := msg.(protocol.FrameRecord)
	if !ok {
		s.count(false)
		return
	}
	if err := s.store.Put(rec); err != nil {
		s.count(false)
		return
	}
	s.count(true)
}

// Shutdown gracefully stops the server: intake is cut first (frames
// arriving afterwards are dropped), in-flight handlers drain bounded by
// ctx, and the store is then closed, flushing its buffered log writers.
// The drain duration lands in the shutdown histogram. Idempotent; on
// ctx expiry the store is left open so the caller can still force-close
// it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	clk := s.clk
	s.mu.Unlock()

	start := clk.Now()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("framestore: shutdown drain: %w", ctx.Err())
	}
	err := s.store.Close()
	s.mu.Lock()
	s.drain.Observe(clk.Now().Sub(start).Seconds())
	s.drainObs++
	s.mu.Unlock()
	return err
}

// DrainObservations returns how many graceful shutdowns have recorded a
// drain duration (at most one per server; exposed for tests and
// telemetry wiring).
func (s *Server) DrainObservations() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drainObs
}

func (s *Server) count(ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ok {
		s.received++
	} else {
		s.errors++
	}
}

// Stats returns the number of records stored and handler errors.
func (s *Server) Stats() (received, errs int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received, s.errors
}

// Client is the camera-side storage client for frames: fire-and-forget,
// off the critical path.
type Client struct {
	ep         transport.Endpoint
	serverAddr string
}

// NewClient builds a client sending through ep.
func NewClient(ep transport.Endpoint, serverAddr string) (*Client, error) {
	if ep == nil || serverAddr == "" {
		return nil, errors.New("framestore: endpoint and server address required")
	}
	return &Client{ep: ep, serverAddr: serverAddr}, nil
}

// StoreFrameContext sends one frame record to the server, bounded by
// ctx (the transport applies its default send timeout when ctx carries
// no deadline).
func (c *Client) StoreFrameContext(ctx context.Context, rec protocol.FrameRecord) error {
	env, err := protocol.Seal(rec)
	if err != nil {
		return err
	}
	if err := c.ep.Send(ctx, c.serverAddr, env); err != nil {
		return fmt.Errorf("framestore: send: %w", err)
	}
	return nil
}

// StoreFrame sends one frame record to the server with the transport's
// default send timeout.
func (c *Client) StoreFrame(rec protocol.FrameRecord) error {
	return c.StoreFrameContext(context.Background(), rec)
}
