package framestore

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/imaging"
	"repro/internal/protocol"
	"repro/internal/transport"
)

func record(camera string, seq int64) protocol.FrameRecord {
	img := imaging.MustNewFrame(8, 6)
	img.FillRect(imaging.Rect{X: int(seq % 8), Y: 0, W: 2, H: 2}, imaging.Red)
	return protocol.FrameRecord{
		CameraID:  camera,
		Seq:       seq,
		Timestamp: time.Date(2020, 12, 7, 0, 0, int(seq), 0, time.UTC),
		Width:     img.Width,
		Height:    img.Height,
		Pixels:    img.Pix,
		Annotations: []protocol.BoxAnnotation{
			{TrackID: seq, X: 1, Y: 1, W: 2, H: 2, Label: "car", Confidence: 0.9},
		},
	}
}

func TestMemStorePutGet(t *testing.T) {
	s, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	if err := s.Put(record("cam1", 1)); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("cam1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 1 || len(got.Pixels) != 8*6*3 || len(got.Annotations) != 1 {
		t.Errorf("got %+v", got)
	}
	if _, err := s.Get("cam1", 99); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing seq: %v", err)
	}
	if _, err := s.Get("ghost", 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing camera: %v", err)
	}
}

func TestPutValidation(t *testing.T) {
	s, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	bad := record("cam1", 1)
	bad.CameraID = ""
	if err := s.Put(bad); err == nil {
		t.Error("missing camera accepted")
	}
	bad2 := record("cam1", 1)
	bad2.Pixels = bad2.Pixels[:10]
	if err := s.Put(bad2); err == nil {
		t.Error("inconsistent pixels accepted")
	}
}

func TestPutIdempotent(t *testing.T) {
	s, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	if err := s.Put(record("cam1", 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(record("cam1", 5)); err != nil {
		t.Fatal(err)
	}
	if s.Count("cam1") != 1 {
		t.Errorf("count = %d", s.Count("cam1"))
	}
}

func TestRange(t *testing.T) {
	s, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	for _, seq := range []int64{5, 1, 3, 9, 7} { // out of order
		if err := s.Put(record("cam1", seq)); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := s.Range("cam1", 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].Seq != 3 || recs[1].Seq != 5 || recs[2].Seq != 7 {
		t.Errorf("range = %+v", recs)
	}
	empty, err := s.Range("ghost", 0, 10)
	if err != nil || empty != nil {
		t.Errorf("ghost range = %v err %v", empty, err)
	}
}

func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(1); seq <= 5; seq++ {
		if err := s.Put(record("cam1", seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(record("cam2", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(record("cam1", 6)); !errors.Is(err, ErrClosed) {
		t.Errorf("put after close: %v", err)
	}

	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	if s2.Count("cam1") != 5 || s2.Count("cam2") != 1 {
		t.Fatalf("reloaded counts %d/%d", s2.Count("cam1"), s2.Count("cam2"))
	}
	got, err := s2.Get("cam1", 3)
	if err != nil {
		t.Fatal(err)
	}
	want := record("cam1", 3)
	if got.Seq != want.Seq || len(got.Pixels) != len(want.Pixels) {
		t.Errorf("reloaded record differs")
	}
	for i := range got.Pixels {
		if got.Pixels[i] != want.Pixels[i] {
			t.Error("pixels corrupted")
			break
		}
	}
	cams := s2.Cameras()
	if len(cams) != 2 || cams[0] != "cam1" || cams[1] != "cam2" {
		t.Errorf("cameras = %v", cams)
	}
	// Appending continues after reload.
	if err := s2.Put(record("cam1", 6)); err != nil {
		t.Fatal(err)
	}
	if s2.Count("cam1") != 6 {
		t.Errorf("count after append = %d", s2.Count("cam1"))
	}
}

func TestServerClientOverBus(t *testing.T) {
	bus := transport.NewBus()
	sep, err := bus.Endpoint("framestore")
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = store.Close() }()
	srv, err := NewServer(store, sep)
	if err != nil {
		t.Fatal(err)
	}

	cep, err := bus.Endpoint("cam1")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(cep, "framestore")
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(1); seq <= 3; seq++ {
		if err := cl.StoreFrame(record("cam1", seq)); err != nil {
			t.Fatal(err)
		}
	}
	if store.Count("cam1") != 3 {
		t.Errorf("stored %d frames", store.Count("cam1"))
	}
	received, errs := srv.Stats()
	if received != 3 || errs != 0 {
		t.Errorf("stats = %d/%d", received, errs)
	}
}

func TestServerIgnoresWrongMessages(t *testing.T) {
	bus := transport.NewBus()
	sep, err := bus.Endpoint("framestore")
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = store.Close() }()
	srv, err := NewServer(store, sep)
	if err != nil {
		t.Fatal(err)
	}
	cep, err := bus.Endpoint("x")
	if err != nil {
		t.Fatal(err)
	}
	env, err := protocol.Seal(protocol.Retire{EventID: "a#1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cep.Send(context.Background(), "framestore", env); err != nil {
		t.Fatal(err)
	}
	if _, errs := srv.Stats(); errs != 1 {
		t.Errorf("errors = %d, want 1", errs)
	}
}

func TestClientValidation(t *testing.T) {
	if _, err := NewClient(nil, "x"); err == nil {
		t.Error("nil endpoint accepted")
	}
	bus := transport.NewBus()
	ep, err := bus.Endpoint("c")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(ep, ""); err == nil {
		t.Error("empty addr accepted")
	}
}

func TestServerGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	bus := transport.NewBus()
	sep, err := bus.Endpoint("framestore")
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(store, sep)
	if err != nil {
		t.Fatal(err)
	}

	cep, err := bus.Endpoint("cam1")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(cep, "framestore")
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(1); seq <= 3; seq++ {
		if err := cl.StoreFrame(record("cam1", seq)); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := srv.DrainObservations(); got != 1 {
		t.Errorf("drain observations = %d, want 1", got)
	}
	// Intake is cut: frames after shutdown neither land nor count.
	_ = cl.StoreFrame(record("cam1", 4))
	received, errs := srv.Stats()
	if received != 3 || errs != 0 {
		t.Errorf("stats after shutdown = %d/%d, want 3/0", received, errs)
	}
	// The store was flushed and closed as part of the drain.
	if err := store.Put(record("cam1", 5)); !errors.Is(err, ErrClosed) {
		t.Errorf("store accepts writes after shutdown: %v", err)
	}
	// Idempotent.
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if got := srv.DrainObservations(); got != 1 {
		t.Errorf("drain observations after repeat = %d, want 1", got)
	}

	// The flushed frames survive a reopen.
	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = re.Close() }()
	if got := re.Count("cam1"); got != 3 {
		t.Errorf("reopened store holds %d frames, want 3", got)
	}
}
