package framestore

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// TestConcurrentReadersDuringWrites exercises the lock-free read path:
// readers serve Get/Range against pinned segment handles while a writer
// appends and rolls segments. Run under -race (make race-stress) this
// catches index-publish and segment-handle races.
func TestConcurrentReadersDuringWrites(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStoreConfig(dir, Config{SegmentBytes: 4096, CacheFrames: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()

	const total = 300
	var published atomic.Int64
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		for seq := int64(1); seq <= total; seq++ {
			if err := s.Put(record("cam1", seq)); err != nil {
				t.Errorf("put %d: %v", seq, err)
				return
			}
			published.Store(seq)
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				hi := published.Load()
				if hi == 0 {
					continue
				}
				seq := hi - int64(i)%hi
				rec, err := s.Get("cam1", seq)
				if err != nil {
					t.Errorf("reader %d: get %d (published %d): %v", r, seq, hi, err)
					return
				}
				if rec.Seq != seq {
					t.Errorf("reader %d: got seq %d, want %d", r, rec.Seq, seq)
					return
				}
				if i%16 == 0 {
					recs, err := s.Range("cam1", 1, hi)
					if err != nil {
						t.Errorf("reader %d: range: %v", r, err)
						return
					}
					if int64(len(recs)) < hi {
						t.Errorf("reader %d: range to %d returned %d records", r, hi, len(recs))
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()

	if got := s.Count("cam1"); got != total {
		t.Errorf("Count = %d, want %d", got, total)
	}
}

// TestConcurrentStressWithGC adds retention to the reader/writer mix:
// segments are collected underneath in-flight reads, which must either
// finish against their pinned handle or miss cleanly — never crash or
// return a wrong record.
func TestConcurrentStressWithGC(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStoreConfig(dir, Config{
		SegmentBytes: 2048,
		RetainBytes:  10 * 1024,
		CacheFrames:  16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()

	const total = 400
	var published atomic.Int64
	var wg sync.WaitGroup

	for w, cam := range []string{"cam1", "cam2"} {
		wg.Add(1)
		go func(w int, cam string) {
			defer wg.Done()
			for seq := int64(1); seq <= total; seq++ {
				if err := s.Put(record(cam, seq)); err != nil {
					t.Errorf("writer %s: put %d: %v", cam, seq, err)
					return
				}
				if w == 0 {
					published.Store(seq)
				}
			}
		}(w, cam)
	}

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				hi := published.Load()
				if hi == 0 {
					continue
				}
				seq := hi - int64(i)%hi
				rec, err := s.Get("cam1", seq)
				if err != nil {
					// GC may have collected it; a clean miss is correct.
					if errors.Is(err, ErrNotFound) {
						continue
					}
					t.Errorf("reader %d: get %d: %v", r, seq, err)
					return
				}
				if rec.Seq != seq {
					t.Errorf("reader %d: got seq %d, want %d", r, rec.Seq, seq)
					return
				}
			}
		}(r)
	}

	// A GC goroutine hammers retention alongside the after-roll hooks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := s.GC(); err != nil {
				t.Errorf("gc: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// Whatever survived is internally consistent.
	for _, cam := range []string{"cam1", "cam2"} {
		recs, err := s.Range(cam, 1, total)
		if err != nil {
			t.Fatalf("final range %s: %v", cam, err)
		}
		if len(recs) != s.Count(cam) {
			t.Errorf("%s: Range %d records vs Count %d", cam, len(recs), s.Count(cam))
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].Seq <= recs[i-1].Seq {
				t.Errorf("%s: Range out of order at %d", cam, i)
				break
			}
		}
	}
}

func TestReadCacheHitsAndMisses(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStoreConfig(dir, Config{CacheFrames: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	reg := obs.NewRegistry()
	s.Instrument(reg, nil)
	hits := reg.Counter("coralpie_framestore_cache_hits_total", "")
	misses := reg.Counter("coralpie_framestore_cache_misses_total", "")

	for seq := int64(1); seq <= 3; seq++ {
		if err := s.Put(record("cam1", seq)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Get("cam1", 1); err != nil {
		t.Fatal(err)
	}
	if hits.Value() != 0 || misses.Value() != 1 {
		t.Errorf("after cold read: hits=%d misses=%d", hits.Value(), misses.Value())
	}
	if _, err := s.Get("cam1", 1); err != nil {
		t.Fatal(err)
	}
	if hits.Value() != 1 || misses.Value() != 1 {
		t.Errorf("after warm read: hits=%d misses=%d", hits.Value(), misses.Value())
	}
	// Capacity 2: reading 2 and 3 evicts 1.
	if _, err := s.Get("cam1", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("cam1", 3); err != nil {
		t.Fatal(err)
	}
	if s.cache.len() != 2 {
		t.Errorf("cache holds %d records, want 2", s.cache.len())
	}
	if _, err := s.Get("cam1", 1); err != nil {
		t.Fatal(err)
	}
	if misses.Value() != 4 {
		t.Errorf("evicted entry served from cache: misses=%d, want 4", misses.Value())
	}
}

func TestMemBytesMetricMatchesDisk(t *testing.T) {
	// Satellite fix: identical traffic must charge identical bytes on
	// memory- and disk-backed stores.
	mem, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mem.Close() }()
	dsk, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dsk.Close() }()

	memReg, dskReg := obs.NewRegistry(), obs.NewRegistry()
	mem.Instrument(memReg, nil)
	dsk.Instrument(dskReg, nil)
	for seq := int64(1); seq <= 5; seq++ {
		if err := mem.Put(record("cam1", seq)); err != nil {
			t.Fatal(err)
		}
		if err := dsk.Put(record("cam1", seq)); err != nil {
			t.Fatal(err)
		}
	}
	mb := memReg.Counter("coralpie_framestore_bytes_total", "").Value()
	db := dskReg.Counter("coralpie_framestore_bytes_total", "").Value()
	if mb == 0 || mb != db {
		t.Errorf("bytes_total diverges: mem=%d disk=%d", mb, db)
	}
}
