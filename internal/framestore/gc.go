package framestore

import (
	"fmt"
	"os"
	"sort"
)

// Retention GC reclaims whole sealed segments, never individual records:
// deletion is a manifest rewrite plus an unlink, with no copying. Two
// policies compose:
//
//   - age (Config.RetainAge): a sealed segment whose newest record
//     timestamp is older than now-RetainAge is dropped;
//   - size (Config.RetainBytes): while the store's total on-disk bytes
//     exceed the bound, the globally oldest sealed segment is dropped.
//
// The active segment is never deleted (it would race the writer), so an
// idle camera's stale active segment is sealed first and collected on
// the next pass. GC runs automatically after every segment roll when
// retention is configured, and on demand via GC() (framestore-server
// drives it on a timer so idle stores still age out).
//
// Locking: age retention for a camera runs under that camera's wmu; the
// cross-camera size pass never holds more than one wmu at a time, so
// two cameras rolling (and GC-ing) concurrently cannot deadlock.

// GC runs one retention pass over every camera and returns what it
// reclaimed. A no-op (and zero-stats) for in-memory stores or when no
// retention policy is configured.
func (s *Store) GC() (GCStats, error) {
	if s.dir == "" || !s.cfg.retentionEnabled() {
		return GCStats{}, nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return GCStats{}, ErrClosed
	}
	names := make([]string, 0, len(s.logs))
	for c := range s.logs {
		names = append(names, c)
	}
	s.mu.Unlock()
	sort.Strings(names)

	var total GCStats
	for _, camera := range names {
		s.mu.Lock()
		cl := s.logs[camera]
		s.mu.Unlock()
		if cl == nil || cl.mem != nil {
			continue
		}
		cl.wmu.Lock()
		// Seal a stale idle active segment so age retention can reach it
		// (a fresh one is created lazily by the next Put).
		if s.cfg.RetainAge > 0 {
			cutoff := s.now().Add(-s.cfg.RetainAge)
			s.mu.Lock()
			seg := cl.active()
			stale := seg != nil && seg.frames > 0 && seg.newest.Before(cutoff)
			s.mu.Unlock()
			if stale {
				if err := s.sealActive(cl); err != nil {
					cl.wmu.Unlock()
					return total, err
				}
			}
		}
		st, err := s.gcCamera(cl)
		cl.wmu.Unlock()
		total = total.plus(st)
		if err != nil {
			return total, err
		}
	}
	st, err := s.gcBySize()
	total = total.plus(st)
	s.recordGC(total)
	return total, err
}

func (a GCStats) plus(b GCStats) GCStats {
	return GCStats{
		Segments: a.Segments + b.Segments,
		Frames:   a.Frames + b.Frames,
		Bytes:    a.Bytes + b.Bytes,
	}
}

// gcCamera applies age retention to one camera's sealed segments.
// Caller holds cl.wmu.
func (s *Store) gcCamera(cl *cameraLog) (GCStats, error) {
	var st GCStats
	if s.cfg.RetainAge <= 0 {
		return st, nil
	}
	cutoff := s.now().Add(-s.cfg.RetainAge)
	for {
		s.mu.Lock()
		var victim *segment
		// Oldest first; stop at the first keeper so retention cannot
		// punch holes in the middle of the chain.
		if len(cl.segs) > 0 {
			seg := cl.segs[0]
			if seg.w == nil && seg.newest.Before(cutoff) {
				victim = seg
			}
		}
		s.mu.Unlock()
		if victim == nil {
			return st, nil
		}
		n, err := s.deleteSegment(cl, victim)
		st = st.plus(n)
		if err != nil {
			return st, err
		}
	}
}

// gcBySize enforces Config.RetainBytes across all cameras, deleting the
// globally oldest sealed segment until under the bound. Caller must NOT
// hold any camera's wmu: each victim's wmu is taken (one at a time)
// here.
func (s *Store) gcBySize() (GCStats, error) {
	var st GCStats
	if s.cfg.RetainBytes <= 0 {
		return st, nil
	}
	for {
		s.mu.Lock()
		if s.disk <= s.cfg.RetainBytes {
			s.mu.Unlock()
			return st, nil
		}
		// Victim: the sealed head segment with the oldest newest-record
		// timestamp (ties broken by camera name for determinism).
		var (
			victimLog *cameraLog
			victim    *segment
		)
		names := make([]string, 0, len(s.logs))
		for c := range s.logs {
			names = append(names, c)
		}
		sort.Strings(names)
		for _, c := range names {
			cl := s.logs[c]
			if cl.mem != nil || len(cl.segs) == 0 {
				continue
			}
			seg := cl.segs[0]
			if seg.w != nil {
				continue // active: never deleted
			}
			if victim == nil || seg.newest.Before(victim.newest) {
				victimLog, victim = cl, seg
			}
		}
		s.mu.Unlock()
		if victim == nil {
			return st, nil // only active segments left; bound is best-effort
		}
		victimLog.wmu.Lock()
		// Re-verify under the write lock: a concurrent GC may have
		// already removed the victim.
		s.mu.Lock()
		still := len(victimLog.segs) > 0 && victimLog.segs[0] == victim && victim.w == nil
		s.mu.Unlock()
		var err error
		if still {
			var n GCStats
			n, err = s.deleteSegment(victimLog, victim)
			st = st.plus(n)
		}
		victimLog.wmu.Unlock()
		if err != nil {
			return st, err
		}
		if !still {
			return st, nil
		}
	}
}

// deleteSegment removes one sealed segment: index entries out, manifest
// rewritten without it, file unlinked, handle closed when the last
// pinned reader releases it. Caller holds cl.wmu.
func (s *Store) deleteSegment(cl *cameraLog, seg *segment) (GCStats, error) {
	st := GCStats{Segments: 1}
	s.mu.Lock()
	for i, sg := range cl.segs {
		if sg == seg {
			cl.segs = append(cl.segs[:i], cl.segs[i+1:]...)
			break
		}
	}
	kept := cl.seqs[:0]
	for _, seq := range cl.seqs {
		if ref, ok := cl.index[seq]; ok && ref.seg == seg {
			delete(cl.index, seq)
			st.Frames++
			continue
		}
		kept = append(kept, seq)
	}
	cl.seqs = kept
	st.Bytes = seg.size
	s.disk -= seg.size
	s.m.diskBytes.Set(s.disk)
	seg.dead = true
	_ = s.releaseLocked(seg) // drop the store's own pin
	s.mu.Unlock()

	// Manifest before unlink: a crash in between leaves a stray file
	// that open deletes, never a phantom resurrection.
	if err := s.writeManifest(cl); err != nil {
		return st, err
	}
	if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
		return st, fmt.Errorf("framestore: unlink segment: %w", err)
	}
	return st, nil
}

// recordGC folds one pass into the gc metrics and emits a "gc" span.
func (s *Store) recordGC(st GCStats) {
	s.mu.Lock()
	m := s.m
	tracer := s.tracer
	s.gcSeq++
	seq := s.gcSeq
	clk := s.clk
	disk := s.disk
	s.mu.Unlock()
	m.gcRuns.Inc()
	m.gcSegments.Add(st.Segments)
	m.gcFrames.Add(st.Frames)
	m.gcBytes.Add(st.Bytes)
	if tracer != nil {
		now := clk.Now()
		tracer.RecordRoot(fmt.Sprintf("framestore-gc-%d", seq), "gc", now, now,
			"segments", fmt.Sprint(st.Segments),
			"frames", fmt.Sprint(st.Frames),
			"reclaimedBytes", fmt.Sprint(st.Bytes),
			"diskBytes", fmt.Sprint(disk))
	}
}
