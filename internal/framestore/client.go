package framestore

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/rpc"
	"repro/internal/transport"
)

// Client is the camera-side storage client for frames: fire-and-forget,
// off the critical path.
type Client struct {
	ep         transport.Endpoint
	serverAddr string
}

// NewClient builds a client sending through ep.
func NewClient(ep transport.Endpoint, serverAddr string) (*Client, error) {
	if ep == nil || serverAddr == "" {
		return nil, errors.New("framestore: endpoint and server address required")
	}
	return &Client{ep: ep, serverAddr: serverAddr}, nil
}

// StoreFrameContext sends one frame record to the server, bounded by
// ctx (the transport applies its default send timeout when ctx carries
// no deadline).
func (c *Client) StoreFrameContext(ctx context.Context, rec protocol.FrameRecord) error {
	env, err := protocol.Seal(rec)
	if err != nil {
		return err
	}
	if err := c.ep.Send(ctx, c.serverAddr, env); err != nil {
		return fmt.Errorf("framestore: send: %w", err)
	}
	return nil
}

// StoreFrame sends one frame record to the server with the transport's
// default send timeout.
func (c *Client) StoreFrame(rec protocol.FrameRecord) error {
	return c.StoreFrameContext(context.Background(), rec)
}

// DefaultReplicaTimeout bounds one replica's send when
// MultiClientConfig.CallTimeout is zero: long enough for a healthy
// in-proc or LAN hop, short enough that a dead replica cannot stall the
// capture path for the transport's full default send timeout.
const DefaultReplicaTimeout = time.Second

// MultiClientConfig tunes a replicated frame client.
type MultiClientConfig struct {
	// CallTimeout bounds each replica's send (applied per attempt via
	// the rpc deadline middleware; a caller context with its own
	// deadline wins). 0 uses DefaultReplicaTimeout; negative disables.
	CallTimeout time.Duration
	// RetryBudget is how many extra attempts one replica's send may
	// spend on retryable transport errors. 0 uses the rpc default of 1;
	// negative disables retries.
	RetryBudget int
	// Quorum is how many replicas must accept a frame for StoreFrame to
	// report success. 0 means 1: any surviving replica keeps the
	// evidence, matching the paper's fire-and-forget frame shipping.
	Quorum int
	// Registry re-homes the per-replica telemetry
	// (coralpie_framestore_replica_{sends,errors,retries}_total). Nil
	// uses the process-default registry.
	Registry *obs.Registry
	// Interceptors are appended innermost in each replica's client
	// chain — fault injection, extra logging — running after deadline
	// and retry middleware, once per attempt.
	Interceptors []rpc.ClientInterceptor
}

// MultiClient fans each frame record out to N framestore servers so a
// single server outage loses no evidence. Each replica gets its own
// rpc client chain (default-deadline, retry-on-retryable, then any
// configured extra interceptors) over the shared endpoint; sends run
// sequentially in replica order, keeping discrete-event simulations
// deterministic. A put succeeds when at least Quorum replicas accept.
type MultiClient struct {
	addrs  []string
	sends  []rpc.Handler
	quorum int

	sendCtr []*obs.Counter
	errCtr  []*obs.Counter
}

// NewMultiClient builds a replicated client sending through ep to every
// addr in addrs.
func NewMultiClient(ep transport.Endpoint, addrs []string, cfg MultiClientConfig) (*MultiClient, error) {
	if ep == nil || len(addrs) == 0 {
		return nil, errors.New("framestore: endpoint and at least one server address required")
	}
	for _, a := range addrs {
		if a == "" {
			return nil, errors.New("framestore: empty server address")
		}
	}
	quorum := cfg.Quorum
	if quorum <= 0 {
		quorum = 1
	}
	if quorum > len(addrs) {
		return nil, fmt.Errorf("framestore: quorum %d exceeds %d replicas", quorum, len(addrs))
	}
	timeout := cfg.CallTimeout
	if timeout == 0 {
		timeout = DefaultReplicaTimeout
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default()
	}

	mc := &MultiClient{addrs: addrs, quorum: quorum}
	for _, addr := range addrs {
		retries := reg.Counter("coralpie_framestore_replica_retries_total",
			"frame send retries per framestore replica", "replica", addr)
		base := func(ctx context.Context, req *rpc.Request) (*rpc.Response, error) {
			env := req.Body.(*protocol.Envelope)
			if err := ep.Send(ctx, req.Addr, *env); err != nil {
				// Transport failures (peer gone, bus partition, timeout)
				// are worth one redial; the retry middleware filters.
				return nil, rpc.MarkRetryable(err)
			}
			return &rpc.Response{}, nil
		}
		ics := []rpc.ClientInterceptor{
			rpc.WithDefaultDeadline(timeout),
			rpc.WithRetry(rpc.RetryConfig{Budget: cfg.RetryBudget, OnRetry: retries.Inc}),
		}
		ics = append(ics, cfg.Interceptors...)
		mc.sends = append(mc.sends, rpc.BindClient(base, ics...))
		mc.sendCtr = append(mc.sendCtr, reg.Counter("coralpie_framestore_replica_sends_total",
			"frame records accepted per framestore replica", "replica", addr))
		mc.errCtr = append(mc.errCtr, reg.Counter("coralpie_framestore_replica_errors_total",
			"frame sends failed per framestore replica (after retries)", "replica", addr))
	}
	return mc, nil
}

// Replicas returns the configured server addresses, in send order.
func (mc *MultiClient) Replicas() []string {
	out := make([]string, len(mc.addrs))
	copy(out, mc.addrs)
	return out
}

// StoreFrameContext sends one frame record to every replica and
// succeeds when at least Quorum of them accept it. The trace context on
// ctx rides each envelope (the transport's trace-inject middleware
// stamps it), so every replica's span joins the frame's trace.
func (mc *MultiClient) StoreFrameContext(ctx context.Context, rec protocol.FrameRecord) error {
	env, err := protocol.Seal(rec)
	if err != nil {
		return err
	}
	var (
		delivered int
		firstErr  error
	)
	for i, addr := range mc.addrs {
		// Each replica gets its own envelope copy: middleware may stamp
		// per-send state (trace context) onto the body.
		replicaEnv := env
		req := &rpc.Request{
			Method: string(env.Type),
			Addr:   addr,
			Body:   &replicaEnv,
			OneWay: true,
		}
		if _, err := mc.sends[i](ctx, req); err != nil {
			mc.errCtr[i].Inc()
			if firstErr == nil {
				firstErr = fmt.Errorf("framestore: replica %s: %w", addr, err)
			}
			continue
		}
		mc.sendCtr[i].Inc()
		delivered++
	}
	if delivered < mc.quorum {
		return fmt.Errorf("framestore: frame %s/%d delivered to %d/%d replicas, quorum %d: %w",
			rec.CameraID, rec.Seq, delivered, len(mc.addrs), mc.quorum, firstErr)
	}
	return nil
}

// StoreFrame sends one frame record to every replica with the default
// per-replica timeout.
func (mc *MultiClient) StoreFrame(rec protocol.FrameRecord) error {
	return mc.StoreFrameContext(context.Background(), rec)
}
