package framestore

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// settableClock is a thread-safe test clock.
type settableClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *settableClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *settableClock) Set(t time.Time) {
	c.mu.Lock()
	c.t = t
	c.mu.Unlock()
}

var _ clock.Clock = (*settableClock)(nil)

func TestGCRetainBytesBoundsDisk(t *testing.T) {
	dir := t.TempDir()
	const (
		segBytes    = 2048
		retainBytes = 8192
	)
	s, err := OpenStoreConfig(dir, Config{SegmentBytes: segBytes, RetainBytes: retainBytes})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	reg := obs.NewRegistry()
	s.Instrument(reg, nil)

	const n = 200
	for seq := int64(1); seq <= n; seq++ {
		if err := s.Put(record("cam1", seq)); err != nil {
			t.Fatal(err)
		}
	}
	// GC runs after every roll, so sustained writes keep disk bounded by
	// RetainBytes plus at most one over-threshold active segment.
	recSize := int64(4 + len(mustMarshal(t, record("cam1", 1))))
	bound := int64(retainBytes) + segBytes + recSize
	if got := s.DiskBytes(); got > bound {
		t.Errorf("DiskBytes = %d, want <= %d", got, bound)
	}
	var onDisk int64
	matches, _ := filepath.Glob(filepath.Join(dir, "cam1.*"+segSuffix))
	for _, p := range matches {
		if info, err := os.Stat(p); err == nil {
			onDisk += info.Size()
		}
	}
	if onDisk != s.DiskBytes() {
		t.Errorf("accounting drift: files hold %d bytes, DiskBytes says %d", onDisk, s.DiskBytes())
	}

	// Oldest frames were collected, newest survive.
	if _, err := s.Get("cam1", 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("oldest frame survived retention: %v", err)
	}
	if _, err := s.Get("cam1", n); err != nil {
		t.Errorf("newest frame collected: %v", err)
	}
	// Count matches Range: no phantom index entries for deleted segments.
	recs, err := s.Range("cam1", 1, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != s.Count("cam1") {
		t.Errorf("Range returned %d records, Count says %d", len(recs), s.Count("cam1"))
	}

	if v := reg.Counter("coralpie_framestore_gc_runs_total", "").Value(); v == 0 {
		t.Error("gc_runs_total = 0, want > 0")
	}
	if v := reg.Counter("coralpie_framestore_gc_segments_total", "").Value(); v == 0 {
		t.Error("gc_segments_total = 0, want > 0")
	}
	if v := reg.Counter("coralpie_framestore_gc_reclaimed_bytes_total", "").Value(); v == 0 {
		t.Error("gc_reclaimed_bytes_total = 0, want > 0")
	}
	if v := reg.Gauge("coralpie_framestore_disk_bytes", "").Value(); v != s.DiskBytes() {
		t.Errorf("disk_bytes gauge = %d, DiskBytes = %d", v, s.DiskBytes())
	}

	// The bound still holds across a reload (accounting reconstructed
	// from the surviving segments).
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStoreConfig(dir, Config{SegmentBytes: segBytes, RetainBytes: retainBytes})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = re.Close() }()
	if re.DiskBytes() != onDisk {
		t.Errorf("reloaded DiskBytes = %d, want %d", re.DiskBytes(), onDisk)
	}
}

func TestGCRetainAge(t *testing.T) {
	dir := t.TempDir()
	clk := &settableClock{}
	clk.Set(time.Date(2020, 12, 7, 0, 10, 0, 0, time.UTC))
	s, err := OpenStoreConfig(dir, Config{
		SegmentBytes: 2048,
		RetainAge:    time.Hour,
		Clock:        clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	tracer := obs.NewTracer(clk, 64)
	s.UseTracer(tracer)

	// record() stamps timestamps within the first minute of 2020-12-07.
	for seq := int64(1); seq <= 30; seq++ {
		if err := s.Put(record("cam1", seq)); err != nil {
			t.Fatal(err)
		}
	}
	// Everything is younger than RetainAge: nothing to collect.
	st, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 0 {
		t.Errorf("premature GC: %+v", st)
	}

	// Two hours later every frame has aged out — including the active
	// segment's, which GC seals first.
	clk.Set(time.Date(2020, 12, 7, 2, 0, 0, 0, time.UTC))
	st, err = s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments == 0 || st.Frames != 30 {
		t.Errorf("GC reclaimed %+v, want all 30 frames", st)
	}
	if got := s.Count("cam1"); got != 0 {
		t.Errorf("Count = %d after full age-out", got)
	}
	if s.DiskBytes() != 0 {
		t.Errorf("DiskBytes = %d after full age-out", s.DiskBytes())
	}

	// Every retention pass leaves a "gc" span.
	found := false
	for _, sp := range tracer.Recent() {
		if sp.Name == "gc" {
			found = true
			break
		}
	}
	if !found {
		t.Error("no gc span recorded")
	}

	// The camera accepts new frames after its whole chain was collected.
	if err := s.Put(record("cam1", 31)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("cam1", 31); err != nil {
		t.Errorf("write after age-out: %v", err)
	}
}

func TestGCNeverDeletesActiveSegment(t *testing.T) {
	dir := t.TempDir()
	// RetainBytes far below one record: the size policy wants everything
	// gone, but the active segment must survive.
	s, err := OpenStoreConfig(dir, Config{RetainBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	for seq := int64(1); seq <= 5; seq++ {
		if err := s.Put(record("cam1", seq)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 0 {
		t.Errorf("GC deleted the active segment: %+v", st)
	}
	if got := s.Count("cam1"); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
}

func TestGCMemStoreNoop(t *testing.T) {
	s, err := OpenStoreConfig("", Config{RetainBytes: 1, RetainAge: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	if err := s.Put(record("cam1", 1)); err != nil {
		t.Fatal(err)
	}
	st, err := s.GC()
	if err != nil || st != (GCStats{}) {
		t.Errorf("mem GC = %+v, %v", st, err)
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
