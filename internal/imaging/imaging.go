// Package imaging provides the raw RGB frame representation that flows
// through the Coral-Pie pipeline. The paper transports frames in raw form
// (Section 4.1.5, "Image Serialization") because JPEG/NumPy encoding blew
// the latency budget on a Raspberry Pi; this package mirrors that choice:
// frames are flat RGB byte buffers, with a trivial PPM codec for the frame
// store and debugging.
package imaging

import (
	"errors"
	"fmt"
	"io"
)

// Color is an 8-bit RGB triple.
type Color struct {
	R, G, B uint8
}

// Common colors used by the simulator's vehicle palette and tests.
var (
	Black = Color{0, 0, 0}
	White = Color{255, 255, 255}
	Gray  = Color{128, 128, 128}
	Red   = Color{220, 40, 40}
	Blue  = Color{40, 80, 220}
)

// Frame is a width×height raw RGB image. Pixels are stored row-major,
// three bytes per pixel.
type Frame struct {
	Width  int
	Height int
	Pix    []uint8 // len = Width*Height*3
}

// NewFrame allocates a black frame. It returns an error for non-positive
// dimensions.
func NewFrame(width, height int) (*Frame, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("imaging: invalid frame size %dx%d", width, height)
	}
	return &Frame{Width: width, Height: height, Pix: make([]uint8, width*height*3)}, nil
}

// MustNewFrame is NewFrame for statically known-good dimensions; it panics
// on error and is intended for tests and internal constants.
func MustNewFrame(width, height int) *Frame {
	f, err := NewFrame(width, height)
	if err != nil {
		panic(err)
	}
	return f
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	c := &Frame{Width: f.Width, Height: f.Height, Pix: make([]uint8, len(f.Pix))}
	copy(c.Pix, f.Pix)
	return c
}

// In reports whether (x, y) lies inside the frame.
func (f *Frame) In(x, y int) bool {
	return x >= 0 && x < f.Width && y >= 0 && y < f.Height
}

// At returns the pixel at (x, y). Out-of-bounds reads return Black.
func (f *Frame) At(x, y int) Color {
	if !f.In(x, y) {
		return Black
	}
	i := (y*f.Width + x) * 3
	return Color{R: f.Pix[i], G: f.Pix[i+1], B: f.Pix[i+2]}
}

// Set writes the pixel at (x, y). Out-of-bounds writes are ignored.
func (f *Frame) Set(x, y int, c Color) {
	if !f.In(x, y) {
		return
	}
	i := (y*f.Width + x) * 3
	f.Pix[i], f.Pix[i+1], f.Pix[i+2] = c.R, c.G, c.B
}

// Fill paints the whole frame with one color.
func (f *Frame) Fill(c Color) {
	for i := 0; i < len(f.Pix); i += 3 {
		f.Pix[i], f.Pix[i+1], f.Pix[i+2] = c.R, c.G, c.B
	}
}

// Rect is an axis-aligned integer rectangle. X, Y is the top-left corner;
// the rectangle spans [X, X+W) × [Y, Y+H).
type Rect struct {
	X, Y, W, H int
}

// Empty reports whether the rectangle has no area.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Area returns W*H, or 0 for empty rectangles.
func (r Rect) Area() int {
	if r.Empty() {
		return 0
	}
	return r.W * r.H
}

// CenterX returns the horizontal center as a float.
func (r Rect) CenterX() float64 { return float64(r.X) + float64(r.W)/2 }

// CenterY returns the vertical center as a float.
func (r Rect) CenterY() float64 { return float64(r.Y) + float64(r.H)/2 }

// Intersect returns the overlap of r and o (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	x1 := max(r.X, o.X)
	y1 := max(r.Y, o.Y)
	x2 := min(r.X+r.W, o.X+o.W)
	y2 := min(r.Y+r.H, o.Y+o.H)
	return Rect{X: x1, Y: y1, W: x2 - x1, H: y2 - y1}
}

// IoU returns the intersection-over-union of two rectangles in [0, 1].
func (r Rect) IoU(o Rect) float64 {
	inter := r.Intersect(o).Area()
	if inter <= 0 {
		return 0
	}
	union := r.Area() + o.Area() - inter
	if union <= 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Clamp returns r clipped to the frame bounds.
func (f *Frame) Clamp(r Rect) Rect {
	return r.Intersect(Rect{X: 0, Y: 0, W: f.Width, H: f.Height})
}

// FillRect paints the rectangle (clipped to the frame) with c.
func (f *Frame) FillRect(r Rect, c Color) {
	r = f.Clamp(r)
	if r.Empty() {
		return
	}
	for y := r.Y; y < r.Y+r.H; y++ {
		i := (y*f.Width + r.X) * 3
		for x := 0; x < r.W; x++ {
			f.Pix[i], f.Pix[i+1], f.Pix[i+2] = c.R, c.G, c.B
			i += 3
		}
	}
}

// DrawRectOutline draws a one-pixel rectangle border, used to annotate
// bounding boxes on stored frames.
func (f *Frame) DrawRectOutline(r Rect, c Color) {
	if r.Empty() {
		return
	}
	for x := r.X; x < r.X+r.W; x++ {
		f.Set(x, r.Y, c)
		f.Set(x, r.Y+r.H-1, c)
	}
	for y := r.Y; y < r.Y+r.H; y++ {
		f.Set(r.X, y, c)
		f.Set(r.X+r.W-1, y, c)
	}
}

// noisePattern derives a cheap deterministic per-pixel perturbation from
// the coordinates and a seed, giving camera backgrounds texture without a
// per-frame RNG.
func noisePattern(x, y int, seed uint64) uint8 {
	h := uint64(x)*0x9E3779B97F4A7C15 ^ uint64(y)*0xC2B2AE3D27D4EB4F ^ seed
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return uint8(h & 0x1F) // 0..31
}

// FillTexturedBackground paints a gray asphalt-like background whose
// texture is a deterministic function of the seed, so identical scenes
// render identical frames.
func (f *Frame) FillTexturedBackground(base Color, seed uint64) {
	for y := 0; y < f.Height; y++ {
		for x := 0; x < f.Width; x++ {
			n := noisePattern(x, y, seed)
			f.Set(x, y, Color{
				R: clampU8(int(base.R) + int(n) - 16),
				G: clampU8(int(base.G) + int(n) - 16),
				B: clampU8(int(base.B) + int(n) - 16),
			})
		}
	}
}

func clampU8(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// Equal reports whether two frames have identical dimensions and pixels.
func (f *Frame) Equal(o *Frame) bool {
	if f.Width != o.Width || f.Height != o.Height {
		return false
	}
	for i := range f.Pix {
		if f.Pix[i] != o.Pix[i] {
			return false
		}
	}
	return true
}

// EncodePPM writes the frame as a binary PPM (P6) image.
func (f *Frame) EncodePPM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", f.Width, f.Height); err != nil {
		return fmt.Errorf("ppm header: %w", err)
	}
	if _, err := w.Write(f.Pix); err != nil {
		return fmt.Errorf("ppm pixels: %w", err)
	}
	return nil
}

// DecodePPM reads a binary PPM (P6) image as produced by EncodePPM.
func DecodePPM(r io.Reader) (*Frame, error) {
	var magic string
	var width, height, maxval int
	if _, err := fmt.Fscan(r, &magic, &width, &height, &maxval); err != nil {
		return nil, fmt.Errorf("ppm header: %w", err)
	}
	if magic != "P6" {
		return nil, fmt.Errorf("ppm: unsupported magic %q", magic)
	}
	if maxval != 255 {
		return nil, fmt.Errorf("ppm: unsupported maxval %d", maxval)
	}
	// Consume the single whitespace byte after the header.
	var ws [1]byte
	if _, err := io.ReadFull(r, ws[:]); err != nil {
		return nil, fmt.Errorf("ppm separator: %w", err)
	}
	f, err := NewFrame(width, height)
	if err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(r, f.Pix); err != nil {
		return nil, fmt.Errorf("ppm pixels: %w", err)
	}
	return f, nil
}

// ErrShortBuffer is returned by FrameFromBytes when the pixel payload does
// not match the declared dimensions.
var ErrShortBuffer = errors.New("imaging: pixel buffer length mismatch")

// FrameFromBytes wraps an existing raw RGB buffer as a Frame without
// copying. The caller must not reuse the buffer.
func FrameFromBytes(width, height int, pix []uint8) (*Frame, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("imaging: invalid frame size %dx%d", width, height)
	}
	if len(pix) != width*height*3 {
		return nil, fmt.Errorf("%w: have %d, want %d", ErrShortBuffer, len(pix), width*height*3)
	}
	return &Frame{Width: width, Height: height, Pix: pix}, nil
}
