package imaging

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewFrameValidation(t *testing.T) {
	if _, err := NewFrame(0, 10); err == nil {
		t.Error("zero width should error")
	}
	if _, err := NewFrame(10, -1); err == nil {
		t.Error("negative height should error")
	}
	f, err := NewFrame(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Pix) != 4*3*3 {
		t.Errorf("pix len = %d", len(f.Pix))
	}
}

func TestSetAt(t *testing.T) {
	f := MustNewFrame(10, 10)
	f.Set(3, 4, Red)
	if got := f.At(3, 4); got != Red {
		t.Errorf("At(3,4) = %v", got)
	}
	if got := f.At(0, 0); got != Black {
		t.Errorf("unset pixel = %v", got)
	}
	// Out-of-bounds is safe.
	f.Set(-1, 0, White)
	f.Set(100, 0, White)
	if got := f.At(-1, 0); got != Black {
		t.Errorf("OOB At = %v", got)
	}
}

func TestFillAndFillRect(t *testing.T) {
	f := MustNewFrame(8, 8)
	f.Fill(Gray)
	if f.At(7, 7) != Gray {
		t.Error("Fill missed corner")
	}
	f.FillRect(Rect{X: 2, Y: 2, W: 3, H: 3}, Red)
	if f.At(2, 2) != Red || f.At(4, 4) != Red {
		t.Error("FillRect interior wrong")
	}
	if f.At(5, 5) != Gray || f.At(1, 1) != Gray {
		t.Error("FillRect bled outside")
	}
	// Clipping: a rect partially off-frame must not panic and must paint
	// the visible part.
	f.FillRect(Rect{X: -2, Y: -2, W: 4, H: 4}, Blue)
	if f.At(0, 0) != Blue || f.At(1, 1) != Blue {
		t.Error("clipped FillRect missed visible part")
	}
}

func TestDrawRectOutline(t *testing.T) {
	f := MustNewFrame(10, 10)
	f.DrawRectOutline(Rect{X: 1, Y: 1, W: 5, H: 4}, White)
	if f.At(1, 1) != White || f.At(5, 1) != White || f.At(1, 4) != White || f.At(5, 4) != White {
		t.Error("outline corners missing")
	}
	if f.At(3, 2) != Black {
		t.Error("outline filled interior")
	}
}

func TestRectHelpers(t *testing.T) {
	r := Rect{X: 10, Y: 20, W: 4, H: 6}
	if r.Area() != 24 {
		t.Errorf("Area = %d", r.Area())
	}
	if r.CenterX() != 12 || r.CenterY() != 23 {
		t.Errorf("center = (%v,%v)", r.CenterX(), r.CenterY())
	}
	if (Rect{W: 0, H: 5}).Area() != 0 {
		t.Error("empty rect area should be 0")
	}
	if !(Rect{W: -1, H: 5}).Empty() {
		t.Error("negative width should be empty")
	}
}

func TestIntersect(t *testing.T) {
	a := Rect{X: 0, Y: 0, W: 10, H: 10}
	b := Rect{X: 5, Y: 5, W: 10, H: 10}
	got := a.Intersect(b)
	want := Rect{X: 5, Y: 5, W: 5, H: 5}
	if got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	c := Rect{X: 20, Y: 20, W: 5, H: 5}
	if !a.Intersect(c).Empty() {
		t.Error("disjoint rects should have empty intersection")
	}
}

func TestIoU(t *testing.T) {
	a := Rect{X: 0, Y: 0, W: 10, H: 10}
	tests := []struct {
		name string
		b    Rect
		want float64
	}{
		{"identical", a, 1},
		{"disjoint", Rect{X: 100, Y: 100, W: 10, H: 10}, 0},
		{"half overlap", Rect{X: 0, Y: 5, W: 10, H: 10}, 50.0 / 150.0},
		{"contained", Rect{X: 2, Y: 2, W: 5, H: 5}, 25.0 / 100.0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.IoU(tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("IoU = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIoUProperties(t *testing.T) {
	f := func(x1, y1, w1, h1, x2, y2, w2, h2 int8) bool {
		a := Rect{X: int(x1), Y: int(y1), W: int(w1 & 0x3f), H: int(h1 & 0x3f)}
		b := Rect{X: int(x2), Y: int(y2), W: int(w2 & 0x3f), H: int(h2 & 0x3f)}
		iou := a.IoU(b)
		if iou < 0 || iou > 1 {
			return false
		}
		// Symmetry.
		return math.Abs(iou-b.IoU(a)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPPMRoundTrip(t *testing.T) {
	f := MustNewFrame(6, 4)
	f.FillTexturedBackground(Gray, 12345)
	f.FillRect(Rect{X: 1, Y: 1, W: 2, H: 2}, Red)
	var buf bytes.Buffer
	if err := f.EncodePPM(&buf); err != nil {
		t.Fatalf("EncodePPM: %v", err)
	}
	got, err := DecodePPM(&buf)
	if err != nil {
		t.Fatalf("DecodePPM: %v", err)
	}
	if !got.Equal(f) {
		t.Error("PPM round trip lost data")
	}
}

func TestDecodePPMErrors(t *testing.T) {
	if _, err := DecodePPM(strings.NewReader("P5\n2 2\n255\n")); err == nil {
		t.Error("wrong magic should error")
	}
	if _, err := DecodePPM(strings.NewReader("P6\n2 2\n65535\n")); err == nil {
		t.Error("16-bit maxval should error")
	}
	if _, err := DecodePPM(strings.NewReader("P6\n2 2\n255\n\x00\x01")); err == nil {
		t.Error("truncated pixels should error")
	}
	if _, err := DecodePPM(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
}

func TestTexturedBackgroundDeterministic(t *testing.T) {
	a := MustNewFrame(16, 16)
	b := MustNewFrame(16, 16)
	a.FillTexturedBackground(Gray, 7)
	b.FillTexturedBackground(Gray, 7)
	if !a.Equal(b) {
		t.Error("same seed should render identical background")
	}
	c := MustNewFrame(16, 16)
	c.FillTexturedBackground(Gray, 8)
	if a.Equal(c) {
		t.Error("different seeds should differ")
	}
}

func TestCloneIndependence(t *testing.T) {
	f := MustNewFrame(4, 4)
	c := f.Clone()
	c.Set(0, 0, White)
	if f.At(0, 0) == White {
		t.Error("Clone should not alias pixels")
	}
}

func TestEqualShapes(t *testing.T) {
	a := MustNewFrame(4, 4)
	b := MustNewFrame(4, 5)
	if a.Equal(b) {
		t.Error("different shapes should not be equal")
	}
}

func TestFrameFromBytes(t *testing.T) {
	pix := make([]uint8, 2*2*3)
	pix[0] = 200
	f, err := FrameFromBytes(2, 2, pix)
	if err != nil {
		t.Fatal(err)
	}
	if f.At(0, 0).R != 200 {
		t.Error("FrameFromBytes should wrap without copying")
	}
	if _, err := FrameFromBytes(2, 2, make([]uint8, 5)); err == nil {
		t.Error("mismatched buffer should error")
	}
	if _, err := FrameFromBytes(0, 2, nil); err == nil {
		t.Error("bad dims should error")
	}
}

func TestClamp(t *testing.T) {
	f := MustNewFrame(10, 10)
	got := f.Clamp(Rect{X: -5, Y: 8, W: 20, H: 20})
	want := Rect{X: 0, Y: 8, W: 10, H: 2}
	if got != want {
		t.Errorf("Clamp = %v, want %v", got, want)
	}
}
