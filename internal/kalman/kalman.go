// Package kalman implements a linear Kalman filter. The SORT tracker uses
// it with the standard constant-velocity bounding-box model from Bewley et
// al. (ICIP 2016): state [u, v, s, r, u̇, v̇, ṡ] where (u, v) is the box
// center, s its area, and r its aspect ratio.
package kalman

import (
	"fmt"

	"repro/internal/mat"
)

// Filter is a linear Kalman filter with fixed matrices F, H, Q, R.
type Filter struct {
	x *mat.Matrix // state estimate, n×1
	p *mat.Matrix // state covariance, n×n
	f *mat.Matrix // state transition, n×n
	h *mat.Matrix // observation model, m×n
	q *mat.Matrix // process noise covariance, n×n
	r *mat.Matrix // observation noise covariance, m×m
}

// Config collects the matrices and initial conditions for a Filter.
type Config struct {
	InitialState      *mat.Matrix // n×1
	InitialCovariance *mat.Matrix // n×n
	Transition        *mat.Matrix // F, n×n
	Observation       *mat.Matrix // H, m×n
	ProcessNoise      *mat.Matrix // Q, n×n
	ObservationNoise  *mat.Matrix // R, m×m
}

// New validates the configuration shapes and returns a Filter.
func New(cfg Config) (*Filter, error) {
	if cfg.InitialState == nil || cfg.InitialCovariance == nil ||
		cfg.Transition == nil || cfg.Observation == nil ||
		cfg.ProcessNoise == nil || cfg.ObservationNoise == nil {
		return nil, fmt.Errorf("kalman: all config matrices are required")
	}
	n := cfg.InitialState.Rows()
	m := cfg.Observation.Rows()
	if cfg.InitialState.Cols() != 1 {
		return nil, fmt.Errorf("kalman: initial state must be a column vector")
	}
	checks := []struct {
		name       string
		mtx        *mat.Matrix
		rows, cols int
	}{
		{"InitialCovariance", cfg.InitialCovariance, n, n},
		{"Transition", cfg.Transition, n, n},
		{"Observation", cfg.Observation, m, n},
		{"ProcessNoise", cfg.ProcessNoise, n, n},
		{"ObservationNoise", cfg.ObservationNoise, m, m},
	}
	for _, c := range checks {
		if c.mtx.Rows() != c.rows || c.mtx.Cols() != c.cols {
			return nil, fmt.Errorf("kalman: %s is %dx%d, want %dx%d",
				c.name, c.mtx.Rows(), c.mtx.Cols(), c.rows, c.cols)
		}
	}
	return &Filter{
		x: cfg.InitialState.Clone(),
		p: cfg.InitialCovariance.Clone(),
		f: cfg.Transition.Clone(),
		h: cfg.Observation.Clone(),
		q: cfg.ProcessNoise.Clone(),
		r: cfg.ObservationNoise.Clone(),
	}, nil
}

// State returns a copy of the current state estimate.
func (k *Filter) State() *mat.Matrix { return k.x.Clone() }

// Covariance returns a copy of the current state covariance.
func (k *Filter) Covariance() *mat.Matrix { return k.p.Clone() }

// Predict advances the state one step through the transition model:
// x ← Fx, P ← FPFᵀ + Q.
func (k *Filter) Predict() {
	k.x = k.f.Mul(k.x)
	k.p = k.f.Mul(k.p).Mul(k.f.Transpose()).Add(k.q)
}

// Update incorporates a measurement z (m×1):
//
//	y = z − Hx
//	S = HPHᵀ + R
//	K = PHᵀS⁻¹
//	x ← x + Ky
//	P ← (I − KH)P
func (k *Filter) Update(z *mat.Matrix) error {
	if z.Rows() != k.h.Rows() || z.Cols() != 1 {
		return fmt.Errorf("kalman: measurement is %dx%d, want %dx1", z.Rows(), z.Cols(), k.h.Rows())
	}
	y := z.Sub(k.h.Mul(k.x))
	s := k.h.Mul(k.p).Mul(k.h.Transpose()).Add(k.r)
	sInv, err := s.Inverse()
	if err != nil {
		return fmt.Errorf("kalman: innovation covariance: %w", err)
	}
	gain := k.p.Mul(k.h.Transpose()).Mul(sInv)
	k.x = k.x.Add(gain.Mul(y))
	ikh := mat.Identity(k.p.Rows()).Sub(gain.Mul(k.h))
	k.p = ikh.Mul(k.p)
	return nil
}
