package kalman

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// newConstantVelocity1D builds a 1-D constant-velocity filter: state
// [position, velocity], observing position only.
func newConstantVelocity1D(t *testing.T, procNoise, obsNoise float64) *Filter {
	t.Helper()
	f, err := mat.FromRows([][]float64{{1, 1}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := mat.FromRows([][]float64{{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	q := mat.Identity(2).Scale(procNoise)
	r, err := mat.FromRows([][]float64{{obsNoise}})
	if err != nil {
		t.Fatal(err)
	}
	k, err := New(Config{
		InitialState:      mat.ColVector(0, 0),
		InitialCovariance: mat.Identity(2).Scale(100),
		Transition:        f,
		Observation:       h,
		ProcessNoise:      q,
		ObservationNoise:  r,
	})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil matrices should error")
	}
	f := mat.Identity(2)
	h := mat.Identity(2)
	bad := Config{
		InitialState:      mat.ColVector(0, 0),
		InitialCovariance: mat.Identity(3), // wrong shape
		Transition:        f,
		Observation:       h,
		ProcessNoise:      mat.Identity(2),
		ObservationNoise:  mat.Identity(2),
	}
	if _, err := New(bad); err == nil {
		t.Error("shape mismatch should error")
	}
	bad2 := bad
	bad2.InitialCovariance = mat.Identity(2)
	bad2.InitialState = mat.Identity(2) // not a column vector
	if _, err := New(bad2); err == nil {
		t.Error("non-column state should error")
	}
}

func TestTracksConstantVelocity(t *testing.T) {
	k := newConstantVelocity1D(t, 1e-4, 0.5)
	rng := rand.New(rand.NewSource(1))
	const velocity = 2.5
	for step := 1; step <= 200; step++ {
		k.Predict()
		truth := velocity * float64(step)
		z := mat.ColVector(truth + rng.NormFloat64()*0.5)
		if err := k.Update(z); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	state := k.State()
	if math.Abs(state.At(0, 0)-velocity*200) > 2 {
		t.Errorf("position estimate %v, want ~%v", state.At(0, 0), velocity*200)
	}
	if math.Abs(state.At(1, 0)-velocity) > 0.3 {
		t.Errorf("velocity estimate %v, want ~%v", state.At(1, 0), velocity)
	}
}

func TestCovarianceShrinksWithMeasurements(t *testing.T) {
	k := newConstantVelocity1D(t, 1e-4, 1.0)
	before := k.Covariance().At(0, 0)
	for i := 0; i < 10; i++ {
		k.Predict()
		if err := k.Update(mat.ColVector(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	after := k.Covariance().At(0, 0)
	if after >= before {
		t.Errorf("covariance should shrink: before %v, after %v", before, after)
	}
}

func TestPredictGrowsUncertainty(t *testing.T) {
	k := newConstantVelocity1D(t, 0.1, 1.0)
	// Converge first.
	for i := 0; i < 20; i++ {
		k.Predict()
		if err := k.Update(mat.ColVector(0)); err != nil {
			t.Fatal(err)
		}
	}
	before := k.Covariance().At(0, 0)
	for i := 0; i < 5; i++ {
		k.Predict()
	}
	after := k.Covariance().At(0, 0)
	if after <= before {
		t.Errorf("predict-only should grow uncertainty: before %v, after %v", before, after)
	}
}

func TestUpdateMeasurementShape(t *testing.T) {
	k := newConstantVelocity1D(t, 1, 1)
	if err := k.Update(mat.ColVector(1, 2)); err == nil {
		t.Error("wrong measurement shape should error")
	}
}

func TestUpdatePullsTowardMeasurement(t *testing.T) {
	k := newConstantVelocity1D(t, 1e-3, 0.01)
	k.Predict()
	if err := k.Update(mat.ColVector(10)); err != nil {
		t.Fatal(err)
	}
	pos := k.State().At(0, 0)
	// High initial covariance + precise measurement: estimate jumps close to z.
	if math.Abs(pos-10) > 0.5 {
		t.Errorf("estimate %v, want near 10", pos)
	}
}

func TestStateReturnsCopy(t *testing.T) {
	k := newConstantVelocity1D(t, 1, 1)
	s := k.State()
	s.Set(0, 0, 999)
	if k.State().At(0, 0) == 999 {
		t.Error("State() must return a copy")
	}
}
