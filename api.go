package coralpie

import (
	"math/rand"
	"time"

	"repro/internal/camnode"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/feature"
	"repro/internal/fleet"
	"repro/internal/framestore"
	"repro/internal/geo"
	"repro/internal/imaging"
	"repro/internal/protocol"
	"repro/internal/query"
	"repro/internal/reid"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/tracker"
	"repro/internal/trajstore"
	"repro/internal/vision"
)

// --- Geography and road network ---

// Point is a WGS84 latitude/longitude pair.
type Point = geo.Point

// Direction is one of the eight quantized compass travel directions used
// to key MDCS tables.
type Direction = geo.Direction

// The compass directions.
const (
	North     = geo.North
	NorthEast = geo.NorthEast
	East      = geo.East
	SouthEast = geo.SouthEast
	South     = geo.South
	SouthWest = geo.SouthWest
	West      = geo.West
	NorthWest = geo.NorthWest
)

// Graph is the road network: intersections as vertices, lanes as directed
// edges, cameras on vertices or along lanes. MDCS queries run against it.
type Graph = roadnet.Graph

// NodeID identifies a road intersection.
type NodeID = roadnet.NodeID

// NewGraph returns an empty road network.
func NewGraph() *Graph { return roadnet.NewGraph() }

// Grid builds a rows×cols Manhattan grid of two-way streets.
func Grid(rows, cols int, spacingMeters float64, origin Point) (*Graph, []NodeID, error) {
	return roadnet.Grid(rows, cols, spacingMeters, origin)
}

// Corridor builds a linear road of n intersections.
func Corridor(n int, spacingMeters float64, origin Point) (*Graph, []NodeID, error) {
	return roadnet.Corridor(n, spacingMeters, origin)
}

// Campus builds the 37-intersection campus-like network used by the
// paper's simulation studies.
func Campus() (*Graph, []NodeID, error) { return roadnet.Campus() }

// --- Vision stack (pluggable per the paper's Section 2.1) ---

// Detector is the pluggable detection component.
type Detector = vision.Detector

// Detection is one detector output.
type Detection = vision.Detection

// Frame is one captured camera frame.
type Frame = vision.Frame

// SimDetectorConfig is the error model of the simulated DCNN detector.
type SimDetectorConfig = vision.SimDetectorConfig

// NewSimDetector builds the ground-truth-driven detector with a
// calibrated noise model.
func NewSimDetector(cfg SimDetectorConfig) (*vision.SimDetector, error) {
	return vision.NewSimDetector(cfg)
}

// DefaultSimDetectorConfig returns the calibrated default error model.
func DefaultSimDetectorConfig(seed int64) SimDetectorConfig {
	return vision.DefaultSimDetectorConfig(seed)
}

// TrackerConfig parameterizes the SORT tracker.
type TrackerConfig = tracker.Config

// Histogram is the adaptive color signature carried in detection events.
type Histogram = feature.Histogram

// Bhattacharyya returns the Bhattacharyya distance between signatures.
func Bhattacharyya(p, q Histogram) (float64, error) { return feature.Bhattacharyya(p, q) }

// MatcherConfig parameterizes re-identification.
type MatcherConfig = reid.MatcherConfig

// Color is an 8-bit RGB triple used by the simulator's vehicle palette.
type Color = imaging.Color

// PaletteColor returns the i-th well-separated vehicle color.
func PaletteColor(i int) Color { return sim.PaletteColor(i) }

// RandomRoute generates a random drive of the given number of legs
// starting at start, avoiding immediate U-turns where possible.
func RandomRoute(g *Graph, rng *rand.Rand, start NodeID, legs int) ([]NodeID, error) {
	return sim.RandomRoute(g, rng, start, legs)
}

// --- Protocol ---

// DetectionEvent is the JSON object generated when a vehicle leaves a
// camera's field of view.
type DetectionEvent = protocol.DetectionEvent

// EventID uniquely identifies a detection event ("<camera>#<track>").
type EventID = protocol.EventID

// CameraRef names a peer camera and its transport address.
type CameraRef = protocol.CameraRef

// --- Per-camera node ---

// Node is one camera's processing stack (detection, tracking, features,
// re-identification, communication, storage clients).
type Node = camnode.Node

// NodeStats are a node's lifetime counters.
type NodeStats = camnode.Stats

// --- Trajectory storage ---

// TrajStore is the trajectory graph store.
type TrajStore = trajstore.Store

// TrajVertex is one detection event in the trajectory graph.
type TrajVertex = trajstore.Vertex

// TraceLimits bounds trajectory traversals.
type TraceLimits = trajstore.TraceLimits

// DefaultTraceLimits returns generous traversal bounds.
func DefaultTraceLimits() TraceLimits { return trajstore.DefaultTraceLimits() }

// NewMemTrajStore returns an in-memory trajectory store.
func NewMemTrajStore() *TrajStore { return trajstore.NewMemStore() }

// OpenTrajStore opens a persistent trajectory store rooted at dir.
func OpenTrajStore(dir string) (*TrajStore, error) { return trajstore.Open(dir) }

// FrameStore is the evidence-frame store: segmented per-camera logs
// with retention GC and lock-free reads.
type FrameStore = framestore.Store

// FrameStoreConfig tunes a frame store (segment size, retention, read
// cache).
type FrameStoreConfig = framestore.Config

// OpenFrameStore opens a persistent frame store rooted at dir ("" for
// in-memory) with explicit tuning.
func OpenFrameStore(dir string, cfg FrameStoreConfig) (*FrameStore, error) {
	return framestore.OpenStoreConfig(dir, cfg)
}

// Track is a reconstructed, confidence-scored space-time trajectory.
type Track = query.Track

// ReconstructTracks returns every candidate track through a sighting,
// ranked most-plausible first (longer, then more confident).
func ReconstructTracks(store *TrajStore, eventID EventID, limits TraceLimits) ([]Track, error) {
	return query.Reconstruct(query.StoreReader{Store: store}, eventID, limits)
}

// BestTrack returns the top-ranked track through a sighting.
func BestTrack(store *TrajStore, eventID EventID, limits TraceLimits) (Track, error) {
	return query.Best(query.StoreReader{Store: store}, eventID, limits)
}

// --- Simulation world ---

// VehicleSpec describes one simulated vehicle.
type VehicleSpec = sim.VehicleSpec

// TrafficLight gates a simulated intersection.
type TrafficLight = sim.TrafficLight

// CameraSpec describes one simulated camera.
type CameraSpec = sim.CameraSpec

// World is the simulated road world (vehicles, lights, cameras).
type World = sim.World

// --- Assembled system ---

// Config assembles a simulated Coral-Pie deployment.
type Config = core.Config

// System is a running simulated deployment: cameras, topology server,
// trajectory and frame stores over a simulated network on a
// discrete-event simulator.
type System = core.System

// NewSystem wires the shared services and returns a system ready for
// AddCamera / AddVehicle / Start.
func NewSystem(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// --- Fleet health plane ---

// FleetMonitor ingests node heartbeats and tracks per-node liveness,
// federates fleet-wide metrics, and evaluates declarative alert rules.
// When Config.EnableMonitor is set, System.Monitor returns the in-sim
// instance driven on simulated time.
type FleetMonitor = fleet.Monitor

// FleetRule is one declarative alert rule (threshold or rate).
type FleetRule = fleet.Rule

// FleetAlert is one alert instance for a (rule, node) pair.
type FleetAlert = fleet.Alert

// FleetAlertTransition records one firing/resolved edge.
type FleetAlertTransition = fleet.AlertTransition

// Alert states.
const (
	AlertFiring   = fleet.AlertFiring
	AlertResolved = fleet.AlertResolved
)

// ParseFleetRule parses "name=metric>value" or
// "name=rate(metric)>=value" into a rule.
func ParseFleetRule(s string) (FleetRule, error) { return fleet.ParseRule(s) }

// ClusterSummary is the whole-deployment health view served on /cluster.
type ClusterSummary = fleet.ClusterSummary

// --- Reproduction experiments (paper Section 5) ---

// The per-table/figure reproduction functions from the paper's Section 5.
// Each returns a structured result with paper-vs-measured fields.

// RunTable1 reproduces Table 1 (latency summary) plus the Section 5.2
// throughput observation.
func RunTable1() (experiments.Table1Result, error) { return experiments.Table1() }

// RunTable2 reproduces Table 2 (per-camera event detection accuracy).
func RunTable2(seed int64) (experiments.Table2Result, error) { return experiments.Table2(seed) }

// RunFigure10a reproduces Figure 10(a) (message vs vehicle arrival).
func RunFigure10a(seed int64) (experiments.Fig10aResult, error) { return experiments.Figure10a(seed) }

// RunFigure10b reproduces Figure 10(b) (candidate-pool redundancy,
// MDCS vs broadcast).
func RunFigure10b(seed int64) (experiments.Fig10bResult, error) { return experiments.Figure10b(seed) }

// RunFigure11 reproduces Figure 11 (failure recovery time).
func RunFigure11(heartbeat time.Duration, kills int, seed int64) (experiments.Fig11Result, error) {
	return experiments.Figure11(heartbeat, kills, seed)
}

// RunFigure12a reproduces Figure 12(a) (average MDCS size vs deployment
// size).
func RunFigure12a(seed int64) (experiments.Fig12aResult, error) { return experiments.Figure12a(seed) }

// RunFigure12b reproduces Figure 12(b) (redundancy vs camera density).
func RunFigure12b(seed int64) (experiments.Fig12bResult, error) { return experiments.Figure12b(seed) }

// RunReidAccuracy reproduces the Section 5.6 re-identification study.
func RunReidAccuracy(seed int64) (experiments.ReidResult, error) {
	return experiments.ReidAccuracy(seed)
}

// RunAblationSingleDevice reproduces the single-vs-dual device mapping
// study (Section 4.1.5).
func RunAblationSingleDevice() (experiments.AblationSingleDeviceResult, error) {
	return experiments.AblationSingleDevice()
}

// RunAblationSerialization reproduces the image-serialization study
// (Section 4.1.5).
func RunAblationSerialization() (experiments.AblationSerializationResult, error) {
	return experiments.AblationSerialization()
}

// RunAblationDetectAndTrack reproduces the detect-and-track study
// (Section 4.1.5).
func RunAblationDetectAndTrack(seed int64) (experiments.AblationDetectAndTrackResult, error) {
	return experiments.AblationDetectAndTrack(seed)
}
