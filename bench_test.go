package coralpie

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section 5), reporting the headline quantity of each as a
// custom metric, plus micro-benchmarks of the hot-path components that
// back Table 1's sub-task rows.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// Human-readable paper-vs-measured output comes from cmd/experiments.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/experiments"
	"repro/internal/feature"
	"repro/internal/hungarian"
	"repro/internal/imaging"
	"repro/internal/pipeline"
	"repro/internal/protocol"
	"repro/internal/reid"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/tracker"
	"repro/internal/trajstore"
	"repro/internal/vision"
)

// --- Table 1: latency summary and pipeline throughput ---

func BenchmarkTable1(b *testing.B) {
	var fps float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		fps = res.PipelinedFPS
	}
	b.ReportMetric(fps, "pipelined-FPS")
}

// BenchmarkThroughput isolates the Section 5.2 pipelined-vs-sequential
// comparison on the timing model.
func BenchmarkThroughput(b *testing.B) {
	profile := pipeline.PaperRPi3Profile()
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := pipeline.SimulateTandem(profile.DualDeviceStages(), time.Second/15, 2000)
		if err != nil {
			b.Fatal(err)
		}
		speedup = res.ThroughputFPS / pipeline.SequentialThroughputFPS(profile.DualDeviceStages())
	}
	b.ReportMetric(speedup, "speedup-x")
}

// --- Table 2: event detection accuracy ---

func BenchmarkTable2(b *testing.B) {
	var f2 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(17)
		if err != nil {
			b.Fatal(err)
		}
		f2 = res.MacroF2
	}
	b.ReportMetric(f2, "macro-F2")
}

// --- Figure 10(a): message vs vehicle arrival ---

func BenchmarkFigure10a(b *testing.B) {
	var headstart time.Duration
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure10a(7)
		if err != nil {
			b.Fatal(err)
		}
		headstart = res.MinHeadstart
	}
	b.ReportMetric(headstart.Seconds(), "min-headstart-s")
}

// --- Figure 10(b): candidate-pool redundancy, MDCS vs broadcast ---

func BenchmarkFigure10b(b *testing.B) {
	var mdcs, broadcast float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure10b(11)
		if err != nil {
			b.Fatal(err)
		}
		mdcs, broadcast = res.MeanMDCS, res.MeanBroadcast
	}
	b.ReportMetric(mdcs*100, "mdcs-redundant-%")
	b.ReportMetric(broadcast*100, "broadcast-redundant-%")
}

// BenchmarkAblationBroadcast is the broadcast-flooding half of Figure
// 10(b) viewed as a design ablation.
func BenchmarkAblationBroadcast(b *testing.B) {
	var redundant float64
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultCorridorConfig(11)
		cfg.Vehicles = 24
		cfg.PerfectDetector = true
		cfg.Broadcast = true
		run, err := experiments.RunCorridor(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r, err := run.RedundancyOf(experiments.CameraName(5))
		if err != nil {
			b.Fatal(err)
		}
		redundant = r
	}
	b.ReportMetric(redundant*100, "cam5-redundant-%")
}

// --- Figure 11: failure recovery ---

func BenchmarkFigure11Heartbeat2s(b *testing.B) {
	benchmarkFigure11(b, 2*time.Second)
}

func BenchmarkFigure11Heartbeat5s(b *testing.B) {
	benchmarkFigure11(b, 5*time.Second)
}

func benchmarkFigure11(b *testing.B, heartbeat time.Duration) {
	b.Helper()
	var maxRatio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11(heartbeat, 10, 3)
		if err != nil {
			b.Fatal(err)
		}
		maxRatio = res.MaxOverHeartbeat
	}
	b.ReportMetric(maxRatio, "max-recovery-over-heartbeat")
}

// --- Figure 12(a): MDCS size vs deployment size ---

func BenchmarkFigure12a(b *testing.B) {
	var at10, final float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure12a(9)
		if err != nil {
			b.Fatal(err)
		}
		at10, final = res.AvgAt10, res.FinalAvg
	}
	b.ReportMetric(at10, "avg-mdcs@10")
	b.ReportMetric(final, "avg-mdcs@37")
}

// --- Figure 12(b): redundancy vs density ---

func BenchmarkFigure12b(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure12b(13)
		if err != nil {
			b.Fatal(err)
		}
		last = res.Points[len(res.Points)-1].Redundant
	}
	b.ReportMetric(last*100, "redundant-at-2-cameras-%")
}

// --- Section 5.6: re-identification accuracy ---

func BenchmarkReidAccuracy(b *testing.B) {
	var f2 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.ReidAccuracy(19)
		if err != nil {
			b.Fatal(err)
		}
		f2 = res.F2
	}
	b.ReportMetric(f2, "reid-F2")
}

// --- Section 4.1.5 ablations ---

func BenchmarkAblationSingleDevice(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationSingleDevice()
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.DualFPS / res.SingleFPS
	}
	b.ReportMetric(ratio, "dual-over-single-FPS")
}

func BenchmarkAblationSerialization(b *testing.B) {
	var jpegFPS float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationSerialization()
		if err != nil {
			b.Fatal(err)
		}
		jpegFPS = res.Options[2].FPS
	}
	b.ReportMetric(jpegFPS, "jpeg-FPS")
}

func BenchmarkAblationDetectAndTrack(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationDetectAndTrack(23)
		if err != nil {
			b.Fatal(err)
		}
		gap = res.EveryFrameF2 - res.EveryFifthF2
	}
	b.ReportMetric(gap, "F2-gap")
}

// --- Hot-path micro-benchmarks backing Table 1's sub-task rows ---

func benchFrame() (*imaging.Frame, imaging.Rect) {
	img := imaging.MustNewFrame(256, 192)
	img.FillTexturedBackground(imaging.Gray, 1)
	box := imaging.Rect{X: 100, Y: 80, W: 24, H: 14}
	img.FillRect(box, imaging.Red)
	return img, box
}

func BenchmarkDetectorInference(b *testing.B) {
	img, box := benchFrame()
	det, err := vision.NewSimDetector(vision.DefaultSimDetectorConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	frame := &vision.Frame{CameraID: "bench", Image: img,
		Truth: []vision.TruthObject{{ID: "v", Label: vision.LabelCar, Box: box}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Detect(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSORTUpdate(b *testing.B) {
	tk, err := tracker.New(tracker.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	dets := make([]vision.Detection, 8)
	for k := range dets {
		dets[k] = vision.Detection{
			Box:        imaging.Rect{X: 20 + k*28, Y: 80, W: 20, H: 12},
			Label:      vision.LabelCar,
			Confidence: 0.9,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tk.Update(int64(i), dets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeatureExtraction(b *testing.B) {
	img, box := benchFrame()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := feature.Extract(img, box); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBhattacharyya(b *testing.B) {
	img, box := benchFrame()
	h1, err := feature.Extract(img, box)
	if err != nil {
		b.Fatal(err)
	}
	h2, err := feature.Extract(img, imaging.Rect{X: 90, Y: 70, W: 30, H: 20})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := feature.Bhattacharyya(h1, h2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReidMatch(b *testing.B) {
	img, box := benchFrame()
	hist, err := feature.Extract(img, box)
	if err != nil {
		b.Fatal(err)
	}
	pool, err := reid.NewPool(reid.DefaultPoolConfig())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		pool.Add(protocol.DetectionEvent{
			ID:        protocol.NewEventID("up", int64(i)),
			CameraID:  "up",
			Histogram: hist,
		}, time.Time{})
	}
	matcher, err := reid.NewMatcher(reid.DefaultMatcherConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matcher.Match(hist, pool, time.Time{})
	}
}

func BenchmarkHungarian16x16(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cost := make([][]float64, 16)
	for i := range cost {
		cost[i] = make([]float64, 16)
		for j := range cost[i] {
			cost[i][j] = rng.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := hungarian.Solve(cost); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMDCSCampus(b *testing.B) {
	graph, sites, err := roadnet.Campus()
	if err != nil {
		b.Fatal(err)
	}
	for i, site := range sites {
		if i%3 == 0 {
			if err := graph.PlaceCameraAtNode(fmt.Sprintf("cam%02d", i), site); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.MDCSAll("cam00"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrajStoreInsert(b *testing.B) {
	store := trajstore.NewMemStore()
	img, box := benchFrame()
	hist, err := feature.Extract(img, box)
	if err != nil {
		b.Fatal(err)
	}
	var prev int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := store.AddVertex(protocol.DetectionEvent{
			ID:        protocol.NewEventID("bench", int64(i)),
			CameraID:  "bench",
			Histogram: hist,
		})
		if err != nil {
			b.Fatal(err)
		}
		if prev != 0 {
			if err := store.AddEdge(prev, id, 0.1); err != nil {
				b.Fatal(err)
			}
		}
		prev = id
	}
}

// BenchmarkTrajstoreWritePath measures edge-insert throughput into a
// persistent trajectory store over loopback TCP — the shared write path
// every camera pays — comparing one synchronous RPC per edge against the
// client-side batch writer riding the server's add_batch group commit.
// Results are recorded in BENCH_trajstore.json.
func BenchmarkTrajstoreWritePath(b *testing.B) {
	for _, mode := range []string{"percall", "batched"} {
		for _, clients := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/clients-%d", mode, clients), func(b *testing.B) {
				benchTrajstoreWritePath(b, mode, clients)
			})
		}
	}
}

func benchTrajstoreWritePath(b *testing.B, mode string, clients int) {
	store, err := trajstore.OpenWithConfig(b.TempDir(), trajstore.StoreConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = store.Close() }()
	srv, err := trajstore.Serve(store, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	// Pre-insert a vertex pool for the edges to connect. 2048 vertices
	// give ~4.2M unique (from, to) pairs before the store's duplicate
	// guard would trip.
	const vpool = 2048
	seed, err := trajstore.Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]int64, 0, vpool)
	for off := 0; off < vpool; off += 256 {
		writes := make([]protocol.TrajWrite, 256)
		for i := range writes {
			writes[i] = protocol.VertexWrite(protocol.DetectionEvent{
				ID:       protocol.NewEventID("bench", int64(off+i)),
				CameraID: "bench",
			})
		}
		got, _, err := seed.AddBatch(writes)
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, got...)
	}
	_ = seed.Close()

	// The k-th edge overall connects a unique vertex pair.
	pairOf := func(k int64) (int64, int64) {
		i := k % vpool
		r := k / vpool
		return ids[i], ids[(i+1+r)%vpool]
	}

	var next atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	noteErr := func(err error) {
		if err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
		}
	}

	b.ResetTimer()
	var wg sync.WaitGroup
	per, rem := b.N/clients, b.N%clients
	for c := 0; c < clients; c++ {
		n := per
		if c < rem {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			cl, err := trajstore.Dial(srv.Addr())
			if err != nil {
				noteErr(err)
				return
			}
			defer func() { _ = cl.Close() }()
			if mode == "batched" {
				w := trajstore.NewBatchWriter(cl, trajstore.BatchWriterConfig{MaxBatch: 128})
				for i := 0; i < n; i++ {
					from, to := pairOf(next.Add(1) - 1)
					w.QueueEdge(from, to, 0.1, noteErr)
				}
				noteErr(w.Close())
				return
			}
			for i := 0; i < n; i++ {
				from, to := pairOf(next.Add(1) - 1)
				noteErr(cl.AddEdge(from, to, 0.1))
			}
		}(n)
	}
	wg.Wait()
	b.StopTimer()
	errMu.Lock()
	err = firstErr
	errMu.Unlock()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

func BenchmarkCameraRender(b *testing.B) {
	// Frame synthesis dominates large simulated sweeps; this measures one
	// 256x192 frame with a vehicle in view.
	g, ids, err := roadnet.Corridor(3, 150, Point{Lat: 33.7756, Lon: -84.3963})
	if err != nil {
		b.Fatal(err)
	}
	world, err := sim.NewWorld(sim.WorldConfig{
		Sim:   des.New(time.Date(2020, 12, 7, 0, 0, 0, 0, time.UTC)),
		Graph: g,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := world.AddVehicle(sim.VehicleSpec{
		ID: "v", Color: imaging.Red, SpeedMPS: 15, Route: ids,
	}); err != nil {
		b.Fatal(err)
	}
	node, err := g.Node(ids[1])
	if err != nil {
		b.Fatal(err)
	}
	cam, err := world.AddCamera(sim.DefaultCameraSpec("bench", node.Pos, 0), func(*vision.Frame) {})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cam.Render(10 * time.Second)
	}
}

// --- Extension studies ---

// BenchmarkThresholdSweep regenerates the Bhattacharyya-threshold
// calibration curve behind the prototype's Bhatt_threshold choice.
func BenchmarkThresholdSweep(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.ThresholdSweep(31, []float64{0.1, 0.35, 0.9})
		if err != nil {
			b.Fatal(err)
		}
		best = res.Best.F2
	}
	b.ReportMetric(best, "best-F2")
}

// BenchmarkBlobPipeline runs the pixels-only pipeline (truth-blind
// connected-components detector) end to end.
func BenchmarkBlobPipeline(b *testing.B) {
	var f2 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.BlobPipeline(37)
		if err != nil {
			b.Fatal(err)
		}
		f2 = res.EventF2
	}
	b.ReportMetric(f2, "event-F2")
}
